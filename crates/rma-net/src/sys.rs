//! Thin safe wrappers over the raw socket/epoll/eventfd FFI surface
//! declared in `rewiring::libc`. Everything here is loopback-scoped:
//! the listener binds `127.0.0.1` only — this is a reproduction's
//! network front-end, not an internet-facing daemon.

use rewiring::libc;
use std::io;

/// The calling thread's `errno`.
pub fn errno() -> i32 {
    unsafe { *libc::__errno_location() }
}

fn last_err() -> io::Error {
    io::Error::from_raw_os_error(errno())
}

/// A file descriptor closed on drop.
#[derive(Debug)]
pub struct OwnedFd {
    fd: libc::c_int,
}

/// Outcome of one non-blocking read/write attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoStep {
    /// Bytes moved.
    Bytes(usize),
    /// The peer closed its end (reads only).
    Closed,
    /// The kernel buffer is empty/full; wait for epoll.
    WouldBlock,
}

impl OwnedFd {
    /// Wraps a raw descriptor, taking ownership.
    pub fn from_raw(fd: libc::c_int) -> OwnedFd {
        debug_assert!(fd >= 0);
        OwnedFd { fd }
    }

    /// The raw descriptor (still owned here).
    pub fn raw(&self) -> libc::c_int {
        self.fd
    }

    /// One `read(2)`, `EINTR` retried.
    pub fn read(&self, buf: &mut [u8]) -> io::Result<IoStep> {
        loop {
            let n =
                unsafe { libc::read(self.fd, buf.as_mut_ptr() as *mut libc::c_void, buf.len()) };
            if n > 0 {
                return Ok(IoStep::Bytes(n as usize));
            }
            if n == 0 {
                return Ok(IoStep::Closed);
            }
            match errno() {
                libc::EINTR => continue,
                libc::EAGAIN => return Ok(IoStep::WouldBlock),
                _ => return Err(last_err()),
            }
        }
    }

    /// Clamps the socket's kernel send buffer (`SO_SNDBUF`), which
    /// also disables sndbuf autotuning — the knob that makes
    /// per-connection backpressure bite at a predictable byte count.
    /// The kernel doubles the value it is given.
    pub fn set_sndbuf(&self, bytes: usize) -> io::Result<()> {
        let val = bytes as libc::c_int;
        let rc = unsafe {
            libc::setsockopt(
                self.fd,
                libc::SOL_SOCKET,
                libc::SO_SNDBUF,
                &val as *const libc::c_int as *const libc::c_void,
                std::mem::size_of::<libc::c_int>() as libc::socklen_t,
            )
        };
        if rc != 0 {
            return Err(last_err());
        }
        Ok(())
    }

    /// One `write(2)`, `EINTR` retried.
    pub fn write(&self, buf: &[u8]) -> io::Result<IoStep> {
        loop {
            let n = unsafe { libc::write(self.fd, buf.as_ptr() as *const libc::c_void, buf.len()) };
            if n >= 0 {
                return Ok(IoStep::Bytes(n as usize));
            }
            match errno() {
                libc::EINTR => continue,
                libc::EAGAIN => return Ok(IoStep::WouldBlock),
                _ => return Err(last_err()),
            }
        }
    }
}

impl Drop for OwnedFd {
    fn drop(&mut self) {
        unsafe { libc::close(self.fd) };
    }
}

fn loopback_addr(port: u16) -> libc::sockaddr_in {
    libc::sockaddr_in {
        sin_family: libc::AF_INET as libc::sa_family_t,
        sin_port: port.to_be(),
        sin_addr: libc::in_addr {
            s_addr: libc::INADDR_LOOPBACK.to_be(),
        },
        sin_zero: [0; 8],
    }
}

/// A non-blocking TCP listener bound to `127.0.0.1`.
#[derive(Debug)]
pub struct Listener {
    fd: OwnedFd,
    port: u16,
}

impl Listener {
    /// Binds and listens on loopback. Port `0` asks the kernel for an
    /// ephemeral port; [`port`](Self::port) reports the resolved one.
    pub fn bind_loopback(port: u16) -> io::Result<Listener> {
        let raw = unsafe { libc::socket(libc::AF_INET, libc::SOCK_STREAM | libc::SOCK_CLOEXEC, 0) };
        if raw < 0 {
            return Err(last_err());
        }
        let fd = OwnedFd::from_raw(raw);
        let one: libc::c_int = 1;
        let rc = unsafe {
            libc::setsockopt(
                fd.raw(),
                libc::SOL_SOCKET,
                libc::SO_REUSEADDR,
                &one as *const libc::c_int as *const libc::c_void,
                std::mem::size_of::<libc::c_int>() as libc::socklen_t,
            )
        };
        if rc != 0 {
            return Err(last_err());
        }
        // Flip to non-blocking via fcntl rather than SOCK_NONBLOCK at
        // creation: exercises both paths of the FFI surface.
        let flags = unsafe { libc::fcntl(fd.raw(), libc::F_GETFL) };
        if flags < 0 {
            return Err(last_err());
        }
        if unsafe { libc::fcntl(fd.raw(), libc::F_SETFL, flags | libc::O_NONBLOCK) } < 0 {
            return Err(last_err());
        }
        let addr = loopback_addr(port);
        let rc = unsafe {
            libc::bind(
                fd.raw(),
                &addr as *const libc::sockaddr_in as *const libc::sockaddr,
                std::mem::size_of::<libc::sockaddr_in>() as libc::socklen_t,
            )
        };
        if rc != 0 {
            return Err(last_err());
        }
        if unsafe { libc::listen(fd.raw(), 128) } != 0 {
            return Err(last_err());
        }
        let mut bound = loopback_addr(0);
        let mut len = std::mem::size_of::<libc::sockaddr_in>() as libc::socklen_t;
        let rc = unsafe {
            libc::getsockname(
                fd.raw(),
                &mut bound as *mut libc::sockaddr_in as *mut libc::sockaddr,
                &mut len,
            )
        };
        if rc != 0 {
            return Err(last_err());
        }
        Ok(Listener {
            fd,
            port: u16::from_be(bound.sin_port),
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The raw descriptor, for epoll registration.
    pub fn raw(&self) -> libc::c_int {
        self.fd.raw()
    }

    /// Accepts one pending connection as a non-blocking, cloexec,
    /// `TCP_NODELAY` socket; `None` when the backlog is empty.
    pub fn accept(&self) -> io::Result<Option<OwnedFd>> {
        let raw = unsafe {
            libc::accept4(
                self.fd.raw(),
                std::ptr::null_mut(),
                std::ptr::null_mut(),
                libc::SOCK_NONBLOCK | libc::SOCK_CLOEXEC,
            )
        };
        if raw < 0 {
            return match errno() {
                libc::EAGAIN | libc::EINTR => Ok(None),
                _ => Err(last_err()),
            };
        }
        let conn = OwnedFd::from_raw(raw);
        let one: libc::c_int = 1;
        // Replies are latency-sensitive and framed by the protocol, so
        // Nagle only adds delay. Failure is non-fatal.
        unsafe {
            libc::setsockopt(
                conn.raw(),
                libc::IPPROTO_TCP,
                libc::TCP_NODELAY,
                &one as *const libc::c_int as *const libc::c_void,
                std::mem::size_of::<libc::c_int>() as libc::socklen_t,
            );
        }
        Ok(Some(conn))
    }
}

/// An epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        let raw = unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) };
        if raw < 0 {
            return Err(last_err());
        }
        Ok(Epoll {
            fd: OwnedFd::from_raw(raw),
        })
    }

    fn ctl(&self, op: libc::c_int, fd: libc::c_int, events: u32, token: u64) -> io::Result<()> {
        let mut ev = libc::epoll_event { events, u64: token };
        let rc = unsafe { libc::epoll_ctl(self.fd.raw(), op, fd, &mut ev) };
        if rc != 0 {
            return Err(last_err());
        }
        Ok(())
    }

    /// Registers `fd` for `events`, tagged with `token`.
    pub fn add(&self, fd: libc::c_int, events: u32, token: u64) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: libc::c_int, events: u32, token: u64) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`.
    pub fn del(&self, fd: libc::c_int) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks for ready events (`timeout_ms < 0` waits forever) and
    /// appends `(events, token)` pairs to `out`.
    pub fn wait(&self, out: &mut Vec<(u32, u64)>, timeout_ms: i32) -> io::Result<()> {
        const CAP: usize = 64;
        let mut buf = [libc::epoll_event { events: 0, u64: 0 }; CAP];
        let n = loop {
            let n = unsafe {
                libc::epoll_wait(
                    self.fd.raw(),
                    buf.as_mut_ptr(),
                    CAP as libc::c_int,
                    timeout_ms,
                )
            };
            if n >= 0 {
                break n as usize;
            }
            if errno() != libc::EINTR {
                return Err(last_err());
            }
        };
        for ev in &buf[..n] {
            // Copy out of the (packed on x86_64) struct by value.
            let events = ev.events;
            let token = ev.u64;
            out.push((events, token));
        }
        Ok(())
    }
}

/// An eventfd used to wake the epoll loop from other threads
/// (ticket-completion wakers, shutdown).
#[derive(Debug)]
pub struct EventFd {
    fd: OwnedFd,
}

impl EventFd {
    pub fn new() -> io::Result<EventFd> {
        let raw = unsafe { libc::eventfd(0, libc::EFD_CLOEXEC | libc::EFD_NONBLOCK) };
        if raw < 0 {
            return Err(last_err());
        }
        Ok(EventFd {
            fd: OwnedFd::from_raw(raw),
        })
    }

    /// The raw descriptor, for epoll registration.
    pub fn raw(&self) -> libc::c_int {
        self.fd.raw()
    }

    /// Posts one wake-up. Safe from any thread; an `EAGAIN` (counter
    /// saturated) still leaves the fd readable, so it is ignored.
    pub fn signal(&self) {
        let one: u64 = 1;
        let _ = self.fd.write(&one.to_ne_bytes());
    }

    /// Consumes all pending wake-ups.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        while matches!(self.fd.read(&mut buf), Ok(IoStep::Bytes(_))) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listener_resolves_an_ephemeral_port() {
        let l = Listener::bind_loopback(0).expect("bind");
        assert_ne!(l.port(), 0);
        // Backlog empty: non-blocking accept reports no connection.
        assert!(l.accept().expect("accept probe").is_none());
    }

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let ep = Epoll::new().expect("epoll");
        let ef = EventFd::new().expect("eventfd");
        ep.add(ef.raw(), rewiring::libc::EPOLLIN, 42).expect("add");
        let mut evs = Vec::new();
        ep.wait(&mut evs, 0).expect("wait");
        assert!(evs.is_empty(), "no signal yet");
        ef.signal();
        ef.signal();
        ep.wait(&mut evs, 1000).expect("wait");
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].1, 42);
        ef.drain();
        evs.clear();
        ep.wait(&mut evs, 0).expect("wait");
        assert!(evs.is_empty(), "drained");
    }

    #[test]
    fn loopback_roundtrip_via_std_client() {
        let l = Listener::bind_loopback(0).expect("bind");
        let client = std::net::TcpStream::connect(("127.0.0.1", l.port())).expect("connect");
        // Accept may race the handshake; poll briefly.
        let conn = loop {
            if let Some(c) = l.accept().expect("accept") {
                break c;
            }
            std::thread::yield_now();
        };
        use std::io::Write as _;
        let mut client = client;
        client.write_all(b"ping").expect("send");
        let mut buf = [0u8; 16];
        let got = loop {
            match conn.read(&mut buf).expect("read") {
                IoStep::Bytes(n) => break n,
                IoStep::WouldBlock => std::thread::yield_now(),
                IoStep::Closed => panic!("client closed early"),
            }
        };
        assert_eq!(&buf[..got], b"ping");
        assert_eq!(conn.write(b"pong").expect("write"), IoStep::Bytes(4));
        use std::io::Read as _;
        let mut back = [0u8; 4];
        client.read_exact(&mut back).expect("recv");
        assert_eq!(&back, b"pong");
    }
}
