//! A small blocking wire-protocol client over `std::net::TcpStream`,
//! used by the examples, the loopback tests and the network
//! benchmark driver. Deliberately simple: the interesting I/O
//! machinery lives on the server side; the client just frames
//! requests, reassembles (possibly chunked) responses, and supports
//! pipelining several requests before collecting.

use crate::wire::{self, Frame};
use rma_db::{Op, Reply};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read as _, Write as _};
use std::net::TcpStream;

/// One fully reassembled response.
#[derive(Debug)]
pub struct Completed {
    /// The request's correlation id (as returned by
    /// [`WireClient::send`]).
    pub corr: u32,
    /// One reply per op, in op order. Chunked scan streams arrive
    /// already reassembled into a single [`Reply::Entries`].
    pub replies: Vec<Reply>,
    /// Response frames the reassembly consumed (> 1 when the server
    /// streamed).
    pub frames: u32,
}

struct Partial {
    slots: Vec<Option<Reply>>,
    frames: u32,
}

/// A blocking client connection to a [`NetServer`](crate::NetServer).
pub struct WireClient {
    stream: TcpStream,
    rbuf: Vec<u8>,
    next_corr: u32,
    pending: HashMap<u32, Partial>,
    done: VecDeque<Completed>,
    sbuf: Vec<u8>,
}

impl WireClient {
    /// Connects to `127.0.0.1:port` with `TCP_NODELAY`.
    pub fn connect(port: u16) -> io::Result<WireClient> {
        let stream = TcpStream::connect(("127.0.0.1", port))?;
        stream.set_nodelay(true)?;
        Ok(WireClient {
            stream,
            rbuf: Vec::new(),
            next_corr: 0,
            pending: HashMap::new(),
            done: VecDeque::new(),
            sbuf: Vec::new(),
        })
    }

    /// Frames and sends one request without waiting; returns its
    /// correlation id. Pipelining: send several, then [`recv`]
    /// completions as the server answers.
    ///
    /// [`recv`]: Self::recv
    pub fn send(&mut self, ops: &[Op]) -> io::Result<u32> {
        let corr = self.next_corr;
        self.next_corr = self.next_corr.wrapping_add(1);
        self.sbuf.clear();
        wire::encode_request(&mut self.sbuf, corr, ops);
        self.stream.write_all(&self.sbuf)?;
        self.pending.insert(
            corr,
            Partial {
                slots: vec![None; ops.len()],
                frames: 0,
            },
        );
        Ok(corr)
    }

    /// Blocks until any in-flight request completes and returns it.
    pub fn recv(&mut self) -> io::Result<Completed> {
        if let Some(c) = self.done.pop_front() {
            return Ok(c);
        }
        if self.pending.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "recv with no request in flight",
            ));
        }
        let mut tmp = [0u8; 16 * 1024];
        loop {
            // Drain whole frames already buffered.
            let mut at = 0usize;
            let mut finished = None;
            while finished.is_none() {
                match wire::split_frame(&self.rbuf[at..]).map_err(to_io)? {
                    Frame::Incomplete => break,
                    Frame::Payload { payload, consumed } => {
                        let frame = wire::decode_response(payload).map_err(to_io)?;
                        at += consumed;
                        finished = self.apply(frame)?;
                    }
                }
            }
            if at > 0 {
                self.rbuf.copy_within(at.., 0);
                let len = self.rbuf.len() - at;
                self.rbuf.truncate(len);
            }
            if let Some(c) = finished {
                return Ok(c);
            }
            let n = self.stream.read(&mut tmp)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed with requests in flight",
                ));
            }
            self.rbuf.extend_from_slice(&tmp[..n]);
        }
    }

    /// Convenience: one request, wait for its completion. Other
    /// pipelined completions arriving first are queued for [`recv`].
    ///
    /// [`recv`]: Self::recv
    pub fn call(&mut self, ops: &[Op]) -> io::Result<Vec<Reply>> {
        let corr = self.send(ops)?;
        loop {
            let c = self.recv()?;
            if c.corr == corr {
                return Ok(c.replies);
            }
            self.done.push_back(c);
        }
    }

    /// Requests currently awaiting their final frame.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn apply(&mut self, frame: wire::ResponseFrame) -> io::Result<Option<Completed>> {
        let Some(p) = self.pending.get_mut(&frame.corr) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response for unknown correlation id {}", frame.corr),
            ));
        };
        p.frames += 1;
        for (slot, reply) in frame.items {
            let Some(cell) = p.slots.get_mut(slot as usize) else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("response slot {slot} out of range"),
                ));
            };
            match (cell.as_mut(), reply) {
                // Chunked scan: later frames append to the slot.
                (Some(Reply::Entries(have)), Reply::Entries(mut more)) => {
                    have.append(&mut more);
                }
                (Some(_), _) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("slot {slot} answered twice"),
                    ));
                }
                (None, reply) => *cell = Some(reply),
            }
        }
        if !frame.last {
            return Ok(None);
        }
        let p = self.pending.remove(&frame.corr).expect("present");
        let mut replies = Vec::with_capacity(p.slots.len());
        for (i, slot) in p.slots.into_iter().enumerate() {
            match slot {
                Some(r) => replies.push(r),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("final frame left slot {i} unanswered"),
                    ));
                }
            }
        }
        Ok(Some(Completed {
            corr: frame.corr,
            replies,
            frames: p.frames,
        }))
    }
}

fn to_io(e: wire::WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}
