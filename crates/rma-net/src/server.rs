//! The network front-end: a single-threaded, non-blocking epoll event
//! loop that accepts loopback TCP connections, decodes wire-format
//! request frames into the session router, and streams response
//! frames back as tickets complete.
//!
//! Design notes, in the order they matter:
//!
//! * **One event-loop thread, one session.** The router already
//!   spreads work across shard-affine workers; the front-end's job is
//!   purely to move bytes and bookkeeping. All connection state lives
//!   on the loop thread — no locks, no cross-thread connection maps.
//! * **Completion wake-ups, not polling.** Every submitted ticket
//!   registers an `on_progress` hook that posts an eventfd the epoll
//!   set watches, so the loop parks in `epoll_wait` until either a
//!   socket or the router has something for it.
//! * **Wire-side group commit.** All small requests decoded in one
//!   loop iteration — across *all* connections — are merged into a
//!   single router submit (up to
//!   [`merge_window_ops`](NetConfig::merge_window_ops) ops). Under
//!   high connection counts this turns N tiny batches into one
//!   worker pass, the same trick the WAL plays with group commit,
//!   applied one layer up.
//! * **Backpressure, two ways.** A connection stops being read (its
//!   `EPOLLIN` interest is dropped) while it has
//!   [`max_inflight`](NetConfig::max_inflight) unanswered requests or
//!   more than [`write_buf_cap`](NetConfig::write_buf_cap) unsent
//!   reply bytes. The kernel socket buffer then fills and the
//!   client's own writes block — backpressure propagates without the
//!   server buffering unboundedly.
//! * **Chunked scans.** A `Scan` asking for more than
//!   [`scan_chunk`](NetConfig::scan_chunk) entries is clamped, and
//!   each completed chunk schedules a continuation from the last key
//!   seen — but only while the connection's write buffer is under its
//!   cap, so one huge scan to a slow reader holds a bounded number of
//!   reply bytes and never blocks other connections. Duplicates of
//!   the boundary key already sent are dropped from the next chunk; a
//!   run of duplicates of a *single* key longer than `scan_chunk`
//!   cannot make progress that way and is truncated at the chunk
//!   boundary (the documented inexactness of chunked streaming —
//!   chunks are not one snapshot, concurrent writers may interleave).

use crate::stats::NetStats;
use crate::sys::{Epoll, EventFd, IoStep, Listener};
use crate::wire::{self, Frame, FRAME_HEADER, MAX_FRAME_PAYLOAD};
use rewiring::libc::{EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use rma_db::{Db, Op, Reply, Session, Ticket};
use rma_obs::EventKind;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Tuning for [`NetServer::spawn`]. `Default` is sized for the
/// loopback benchmark workloads.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// TCP port to bind on `127.0.0.1`; `0` asks the kernel for an
    /// ephemeral port (read it back with [`NetServer::port`]).
    pub port: u16,
    /// Unanswered requests one connection may have in flight before
    /// its reads pause.
    pub max_inflight: usize,
    /// Entries per scan reply chunk; scans asking for more stream in
    /// chunks of this size.
    pub scan_chunk: usize,
    /// Unsent reply bytes one connection may buffer before its reads
    /// (and its scan continuations) pause.
    pub write_buf_cap: usize,
    /// Cap on ops merged into one router submit by wire-side group
    /// commit.
    pub merge_window_ops: usize,
    /// Kernel send-buffer size (`SO_SNDBUF`) for accepted
    /// connections; `0` keeps the kernel's autotuned default. Setting
    /// it bounds how many reply bytes the *kernel* absorbs past
    /// [`write_buf_cap`](NetConfig::write_buf_cap), making
    /// backpressure onset predictable.
    pub sndbuf: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            port: 0,
            max_inflight: 8,
            scan_chunk: 1024,
            write_buf_cap: 256 * 1024,
            merge_window_ops: 1024,
            sndbuf: 0,
        }
    }
}

/// Handle to a running network front-end. Dropping it signals the
/// event loop to shut down and joins the thread (open connections are
/// closed; in-flight tickets are abandoned to the router).
pub struct NetServer {
    port: u16,
    stats: Arc<NetStats>,
    shutdown: Arc<EventFd>,
    join: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `127.0.0.1:{cfg.port}`, registers it with a fresh epoll
    /// set and starts the event-loop thread over `db`'s session
    /// router. Returns once the socket is listening, so a client may
    /// connect immediately.
    pub fn spawn(db: Arc<Db>, cfg: NetConfig) -> io::Result<NetServer> {
        let listener = Listener::bind_loopback(cfg.port)?;
        let port = listener.port();
        let epoll = Epoll::new()?;
        let wake = Arc::new(EventFd::new()?);
        let shutdown = Arc::new(EventFd::new()?);
        epoll.add(listener.raw(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(wake.raw(), EPOLLIN, TOKEN_WAKE)?;
        epoll.add(shutdown.raw(), EPOLLIN, TOKEN_SHUTDOWN)?;
        let stats = Arc::new(NetStats::default());
        let thread_stats = Arc::clone(&stats);
        let thread_shutdown = Arc::clone(&shutdown);
        let join = std::thread::Builder::new()
            .name("rma-net".into())
            .spawn(move || {
                let journal_on = db.engine().obs().enabled();
                let mut el = EventLoop {
                    db: &db,
                    session: db.session(),
                    cfg,
                    listener,
                    epoll,
                    wake,
                    stats: thread_stats,
                    journal_on,
                    conns: Vec::new(),
                    free: Vec::new(),
                    next_gen: 1,
                    pendings: Vec::new(),
                };
                el.run();
                drop(thread_shutdown); // keep the registered fd alive until exit
            })?;
        Ok(NetServer {
            port,
            stats,
            shutdown,
            join: Some(join),
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// A frozen snapshot of the connection/protocol counters.
    pub fn stats(&self) -> crate::stats::NetSnapshot {
        self.stats.snapshot()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown.signal();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;
const TOKEN_SHUTDOWN: u64 = u64::MAX - 2;

/// Streaming state of one clamped `Scan`, as of its latest submitted
/// chunk.
#[derive(Debug, Clone, Copy)]
struct ScanPlan {
    corr: u32,
    /// The scan's wire slot in its request.
    slot: u16,
    /// First key of the next chunk.
    start: i64,
    /// Entries the client still wants.
    remaining: usize,
    /// Leading entries with key == `start` already emitted by earlier
    /// chunks (dropped from the next chunk's front).
    drop: usize,
}

/// One response frame being accumulated while routing a ticket's
/// completions: everything answered for a (connection, request) pair
/// in this pass, plus how many of its slots were finally answered.
struct ReplyGroup {
    token: u64,
    corr: u32,
    items: Vec<(u16, Reply)>,
    finalized: usize,
}

/// One request's (or continuation's) span inside a submitted batch.
struct Part {
    /// Owning connection (slot | generation), checked on completion
    /// so a reused slot never receives a stale ticket's replies.
    token: u64,
    corr: u32,
    /// Where this part's ops start in the submitted batch.
    ops_start: usize,
    ops_len: usize,
    /// Wire slot of the part's first op (`0` for whole requests, the
    /// scan's slot for continuation parts).
    wire_base: u16,
    /// Local op index → scan streaming state, for clamped scans.
    scans: Vec<(usize, ScanPlan)>,
}

/// A submitted ticket with the parts mapping its batch slots back to
/// connections.
struct Pending {
    ticket: Ticket,
    parts: Vec<Part>,
}

/// Per-request bookkeeping until its final frame is sent.
struct ReqState {
    /// Slots not yet finally answered (a streaming scan stays
    /// unanswered until its last chunk).
    unanswered: usize,
    /// Decode timestamp, for the frame service-time histogram.
    t0: u64,
}

struct Conn {
    fd: crate::sys::OwnedFd,
    token: u64,
    /// Received-but-unparsed bytes.
    rbuf: Vec<u8>,
    /// Encoded-but-unsent reply bytes; `wpos` is the send offset.
    wbuf: Vec<u8>,
    wpos: usize,
    /// In-flight requests by correlation id.
    reqs: HashMap<u32, ReqState>,
    /// Scan continuations waiting for write-buffer headroom.
    conts: VecDeque<ScanPlan>,
    /// Currently registered epoll interest bits.
    interest: u32,
    open_ns: u64,
    frames_in: u64,
    close: bool,
}

impl Conn {
    fn unsent(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

struct EventLoop<'db> {
    db: &'db Db,
    session: Session<'db>,
    cfg: NetConfig,
    listener: Listener,
    epoll: Epoll,
    wake: Arc<EventFd>,
    stats: Arc<NetStats>,
    journal_on: bool,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u32,
    pendings: Vec<Pending>,
}

fn jlog(db: &Db, on: bool, kind: EventKind, shard: u32, dur_ns: u64, keys: u64) {
    if on {
        db.engine().obs().journal().log(kind, shard, dur_ns, keys);
    }
}

fn lookup(conns: &[Option<Conn>], token: u64) -> Option<usize> {
    let idx = (token & 0xFFFF_FFFF) as usize;
    match conns.get(idx) {
        Some(Some(c)) if c.token == token => Some(idx),
        _ => None,
    }
}

/// Drains the socket into `rbuf`, bounded at one max frame of
/// unparsed backlog (epoll is level-triggered: unread kernel bytes
/// re-arm the loop).
fn read_socket(conn: &mut Conn, stats: &NetStats) {
    let mut tmp = [0u8; 16 * 1024];
    while conn.rbuf.len() < MAX_FRAME_PAYLOAD + FRAME_HEADER {
        match conn.fd.read(&mut tmp) {
            Ok(IoStep::Bytes(n)) => {
                conn.rbuf.extend_from_slice(&tmp[..n]);
                NetStats::add(&stats.bytes_in, n as u64);
            }
            Ok(IoStep::WouldBlock) => break,
            Ok(IoStep::Closed) | Err(_) => {
                conn.close = true;
                break;
            }
        }
    }
}

/// Writes as much of `wbuf` as the socket accepts right now.
fn flush(conn: &mut Conn, stats: &NetStats) {
    while conn.wpos < conn.wbuf.len() {
        match conn.fd.write(&conn.wbuf[conn.wpos..]) {
            Ok(IoStep::Bytes(n)) if n > 0 => {
                conn.wpos += n;
                NetStats::add(&stats.bytes_out, n as u64);
            }
            Ok(IoStep::WouldBlock) | Ok(IoStep::Bytes(_)) => break,
            Ok(IoStep::Closed) | Err(_) => {
                conn.close = true;
                break;
            }
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if conn.wpos > 32 * 1024 {
        conn.wbuf.copy_within(conn.wpos.., 0);
        let len = conn.wbuf.len() - conn.wpos;
        conn.wbuf.truncate(len);
        conn.wpos = 0;
    }
}

/// Applies one completed scan chunk to its plan: what to emit now,
/// and the continuation plan if the scan keeps streaming.
fn scan_step(
    plan: ScanPlan,
    mut es: Vec<(i64, i64)>,
    scan_chunk: usize,
) -> (Vec<(i64, i64)>, Option<ScanPlan>) {
    let submitted = plan.remaining.saturating_add(plan.drop).min(scan_chunk);
    let exhausted = es.len() < submitted;
    let lead = es
        .iter()
        .take_while(|(k, _)| *k == plan.start)
        .count()
        .min(plan.drop);
    es.drain(..lead);
    es.truncate(plan.remaining);
    let emitted = es.len();
    let remaining = plan.remaining - emitted;
    if exhausted || remaining == 0 {
        return (es, None);
    }
    if emitted == 0 {
        // A full chunk of nothing but already-emitted duplicates of
        // `start`: no forward progress at this key — step past it
        // (the documented truncation of >chunk duplicate runs).
        return (
            es,
            Some(ScanPlan {
                start: plan.start.saturating_add(1),
                remaining,
                drop: 0,
                ..plan
            }),
        );
    }
    let last_key = es[emitted - 1].0;
    let dups = es.iter().rev().take_while(|(k, _)| *k == last_key).count();
    let drop = if last_key == plan.start {
        plan.drop + dups
    } else {
        dups
    };
    (
        es,
        Some(ScanPlan {
            start: last_key,
            remaining,
            drop,
            ..plan
        }),
    )
}

fn submit_batch(
    session: &mut Session<'_>,
    batch: &mut Vec<Op>,
    parts: &mut Vec<Part>,
    pendings: &mut Vec<Pending>,
    wake: &Arc<EventFd>,
    stats: &NetStats,
) {
    if parts.is_empty() {
        return;
    }
    let ticket = session.submit(batch);
    let w = Arc::clone(wake);
    ticket.on_progress(move || w.signal());
    if parts.len() > 1 {
        NetStats::bump(&stats.merged_submits);
        NetStats::add(&stats.merged_requests, parts.len() as u64);
    }
    pendings.push(Pending {
        ticket,
        parts: std::mem::take(parts),
    });
    batch.clear();
}

impl EventLoop<'_> {
    fn run(&mut self) {
        let mut events: Vec<(u32, u64)> = Vec::new();
        'outer: loop {
            events.clear();
            if self.epoll.wait(&mut events, -1).is_err() {
                break;
            }
            for &(ev, token) in &events {
                match token {
                    TOKEN_SHUTDOWN => break 'outer,
                    TOKEN_WAKE => self.wake.drain(),
                    TOKEN_LISTENER => self.accept_all(),
                    t => {
                        let Some(idx) = lookup(&self.conns, t) else {
                            continue;
                        };
                        let conn = self.conns[idx].as_mut().expect("looked up");
                        if ev & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0 {
                            conn.close = true;
                            continue;
                        }
                        if ev & EPOLLIN != 0 {
                            read_socket(conn, &self.stats);
                        }
                        if ev & EPOLLOUT != 0 {
                            flush(conn, &self.stats);
                        }
                    }
                }
            }
            self.route_completions();
            self.advance();
        }
        for idx in 0..self.conns.len() {
            self.close_conn(idx);
        }
    }

    fn accept_all(&mut self) {
        while let Ok(Some(fd)) = self.listener.accept() {
            if self.cfg.sndbuf > 0 {
                let _ = fd.set_sndbuf(self.cfg.sndbuf);
            }
            let idx = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.conns.len() - 1
            });
            let gen = self.next_gen;
            self.next_gen = self.next_gen.wrapping_add(1).max(1);
            let token = idx as u64 | (gen as u64) << 32;
            if self
                .epoll
                .add(fd.raw(), EPOLLIN | EPOLLRDHUP, token)
                .is_err()
            {
                self.free.push(idx);
                continue;
            }
            self.conns[idx] = Some(Conn {
                fd,
                token,
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                wpos: 0,
                reqs: HashMap::new(),
                conts: VecDeque::new(),
                interest: EPOLLIN | EPOLLRDHUP,
                open_ns: rma_obs::now_ns(),
                frames_in: 0,
                close: false,
            });
            let live = self.stats.connections.fetch_add(1, Relaxed) + 1;
            NetStats::bump(&self.stats.accepted);
            jlog(
                self.db,
                self.journal_on,
                EventKind::ConnOpen,
                idx as u32,
                0,
                live,
            );
        }
    }

    /// Routes everything completed tickets have to say: emits reply
    /// frames into connection write buffers, finalizes requests,
    /// queues scan continuations, and drops drained tickets.
    fn route_completions(&mut self) {
        let mut k = 0;
        while k < self.pendings.len() {
            if self.pendings[k].ticket.is_poisoned() {
                // A router worker died mid-batch; the affected
                // requests can never be answered. Close their
                // connections rather than leave them hanging.
                let dead = self.pendings.swap_remove(k);
                for part in &dead.parts {
                    if let Some(idx) = lookup(&self.conns, part.token) {
                        self.conns[idx].as_mut().expect("looked up").close = true;
                    }
                }
                continue;
            }
            let ready = self.pendings[k].ticket.take_ready();
            if !ready.is_empty() {
                self.route_ready(k, ready);
            }
            if self.pendings[k].ticket.is_drained()
                && self.pendings[k].parts.iter().all(|p| p.scans.is_empty())
            {
                self.pendings.swap_remove(k);
            } else {
                k += 1;
            }
        }
    }

    fn route_ready(&mut self, k: usize, ready: Vec<(u32, Reply)>) {
        // One response frame is emitted per (token, corr) group.
        let mut groups: Vec<ReplyGroup> = Vec::new();
        let mut conts: Vec<(u64, ScanPlan)> = Vec::new();
        let scan_chunk = self.cfg.scan_chunk;
        {
            let pending = &mut self.pendings[k];
            for (bslot, reply) in ready {
                let bslot = bslot as usize;
                let part = pending
                    .parts
                    .iter_mut()
                    .find(|p| bslot >= p.ops_start && bslot < p.ops_start + p.ops_len)
                    .expect("batch slot maps to a part");
                let local = bslot - part.ops_start;
                let wire_slot = part.wire_base + local as u16;
                let gi = match groups
                    .iter()
                    .position(|g| g.token == part.token && g.corr == part.corr)
                {
                    Some(i) => i,
                    None => {
                        groups.push(ReplyGroup {
                            token: part.token,
                            corr: part.corr,
                            items: Vec::new(),
                            finalized: 0,
                        });
                        groups.len() - 1
                    }
                };
                let g = &mut groups[gi];
                if let Some(pos) = part.scans.iter().position(|(l, _)| *l == local) {
                    let (_, plan) = part.scans.swap_remove(pos);
                    let es = match reply {
                        Reply::Entries(es) => es,
                        other => {
                            // A clamped scan can only answer with
                            // Entries; anything else is an engine bug.
                            unreachable!("scan answered with {other:?}")
                        }
                    };
                    let (emit, next) = scan_step(plan, es, scan_chunk);
                    g.items.push((wire_slot, Reply::Entries(emit)));
                    match next {
                        Some(p) => conts.push((part.token, p)),
                        None => g.finalized += 1,
                    }
                } else {
                    if reply == Reply::Refused {
                        NetStats::bump(&self.stats.refused_ops);
                    }
                    g.items.push((wire_slot, reply));
                    g.finalized += 1;
                }
            }
        }
        for g in groups {
            let Some(idx) = lookup(&self.conns, g.token) else {
                continue; // connection closed while the batch ran
            };
            let conn = self.conns[idx].as_mut().expect("looked up");
            let (last, t0) = match conn.reqs.get_mut(&g.corr) {
                Some(req) => {
                    req.unanswered -= g.finalized;
                    (req.unanswered == 0, req.t0)
                }
                None => continue,
            };
            wire::encode_response(&mut conn.wbuf, g.corr, last, &g.items);
            NetStats::bump(&self.stats.frames_out);
            self.stats.track_peak(conn.unsent());
            if last {
                self.stats
                    .frame_service_ns
                    .record(rma_obs::now_ns().saturating_sub(t0));
                conn.reqs.remove(&g.corr);
            }
        }
        for (token, plan) in conts {
            if let Some(idx) = lookup(&self.conns, token) {
                self.conns[idx]
                    .as_mut()
                    .expect("looked up")
                    .conts
                    .push_back(plan);
            }
        }
    }

    /// The per-iteration steady-state pass: parse newly read bytes
    /// into (merged) submits, pump gated scan continuations, flush
    /// write buffers, recompute epoll interest, reap closed
    /// connections.
    fn advance(&mut self) {
        let cfg = self.cfg;
        // Flush before anything gated on write-buffer headroom
        // (parsing, scan continuations): frames just emitted by
        // completion routing must not keep the gates closed after the
        // socket would have accepted them — there may be no further
        // epoll event to retry on.
        for conn in self.conns.iter_mut().flatten() {
            if !conn.close {
                flush(conn, &self.stats);
            }
        }
        let mut batch: Vec<Op> = Vec::new();
        let mut parts: Vec<Part> = Vec::new();
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns[idx].as_mut() else {
                continue;
            };
            if conn.close {
                continue;
            }
            let mut at = 0usize;
            loop {
                if conn.reqs.len() >= cfg.max_inflight || conn.unsent() >= cfg.write_buf_cap {
                    break;
                }
                let (payload, consumed) = match wire::split_frame(&conn.rbuf[at..]) {
                    Ok(Frame::Incomplete) => break,
                    Ok(Frame::Payload { payload, consumed }) => (payload, consumed),
                    Err(e) => {
                        NetStats::bump(&self.stats.decode_errors);
                        jlog(
                            self.db,
                            self.journal_on,
                            EventKind::ProtoError,
                            idx as u32,
                            0,
                            e.code(),
                        );
                        conn.close = true;
                        break;
                    }
                };
                let (corr, mut ops) = match wire::decode_request(payload) {
                    Ok(req) => req,
                    Err(e) => {
                        NetStats::bump(&self.stats.decode_errors);
                        jlog(
                            self.db,
                            self.journal_on,
                            EventKind::ProtoError,
                            idx as u32,
                            0,
                            e.code(),
                        );
                        conn.close = true;
                        break;
                    }
                };
                at += consumed;
                conn.frames_in += 1;
                NetStats::bump(&self.stats.frames_in);
                if conn.reqs.contains_key(&corr) {
                    // Reusing an in-flight correlation id would cross
                    // two requests' replies — same treatment as a
                    // malformed frame.
                    NetStats::bump(&self.stats.decode_errors);
                    jlog(
                        self.db,
                        self.journal_on,
                        EventKind::ProtoError,
                        idx as u32,
                        0,
                        wire::WireError::DuplicateCorr.code(),
                    );
                    conn.close = true;
                    break;
                }
                let t0 = rma_obs::now_ns();
                if ops.is_empty() {
                    wire::encode_response(&mut conn.wbuf, corr, true, &[]);
                    NetStats::bump(&self.stats.frames_out);
                    self.stats.frame_service_ns.record(0);
                    continue;
                }
                let mut scans = Vec::new();
                for (j, op) in ops.iter_mut().enumerate() {
                    if let Op::Scan { start, count } = *op {
                        if count > cfg.scan_chunk {
                            *op = Op::Scan {
                                start,
                                count: cfg.scan_chunk,
                            };
                            scans.push((
                                j,
                                ScanPlan {
                                    corr,
                                    slot: j as u16,
                                    start,
                                    remaining: count,
                                    drop: 0,
                                },
                            ));
                        }
                    }
                }
                conn.reqs.insert(
                    corr,
                    ReqState {
                        unanswered: ops.len(),
                        t0,
                    },
                );
                if !batch.is_empty() && batch.len() + ops.len() > cfg.merge_window_ops {
                    submit_batch(
                        &mut self.session,
                        &mut batch,
                        &mut parts,
                        &mut self.pendings,
                        &self.wake,
                        &self.stats,
                    );
                }
                let ops_start = batch.len();
                let ops_len = ops.len();
                batch.append(&mut ops);
                parts.push(Part {
                    token: conn.token,
                    corr,
                    ops_start,
                    ops_len,
                    wire_base: 0,
                    scans,
                });
            }
            if at > 0 {
                conn.rbuf.copy_within(at.., 0);
                let len = conn.rbuf.len() - at;
                conn.rbuf.truncate(len);
            }
        }
        submit_batch(
            &mut self.session,
            &mut batch,
            &mut parts,
            &mut self.pendings,
            &self.wake,
            &self.stats,
        );

        // Scan continuations, gated on write-buffer headroom so a
        // blocked reader holds bounded reply bytes.
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns[idx].as_mut() else {
                continue;
            };
            if conn.close {
                continue;
            }
            while !conn.conts.is_empty() && conn.unsent() < cfg.write_buf_cap {
                let plan = conn.conts.pop_front().expect("non-empty");
                if !conn.reqs.contains_key(&plan.corr) {
                    continue;
                }
                let count = plan.remaining.saturating_add(plan.drop).min(cfg.scan_chunk);
                let op = Op::Scan {
                    start: plan.start,
                    count,
                };
                let ticket = self.session.submit(std::slice::from_ref(&op));
                let w = Arc::clone(&self.wake);
                ticket.on_progress(move || w.signal());
                NetStats::bump(&self.stats.scan_chunks);
                self.pendings.push(Pending {
                    ticket,
                    parts: vec![Part {
                        token: conn.token,
                        corr: plan.corr,
                        ops_start: 0,
                        ops_len: 1,
                        wire_base: plan.slot,
                        scans: vec![(0, plan)],
                    }],
                });
            }
        }

        // Flush, recompute interest, reap.
        let mut rearm = false;
        for idx in 0..self.conns.len() {
            let close = {
                let Some(conn) = self.conns[idx].as_mut() else {
                    continue;
                };
                if !conn.close {
                    flush(conn, &self.stats);
                }
                if !conn.close {
                    let paused =
                        conn.reqs.len() >= cfg.max_inflight || conn.unsent() >= cfg.write_buf_cap;
                    let mut want = 0u32;
                    if !paused {
                        want |= EPOLLIN | EPOLLRDHUP;
                    }
                    if conn.unsent() > 0 {
                        want |= EPOLLOUT;
                    }
                    if want != conn.interest {
                        if paused && conn.interest & EPOLLIN != 0 {
                            NetStats::bump(&self.stats.backpressure_pauses);
                        }
                        if self.epoll.modify(conn.fd.raw(), want, conn.token).is_ok() {
                            conn.interest = want;
                        } else {
                            conn.close = true;
                        }
                    }
                    // This flush may have re-opened a gate the earlier
                    // phases saw closed (a peer draining concurrently):
                    // a queued continuation or a parseable frame now
                    // has headroom, but with the write buffer empty and
                    // no ticket in flight there may be no further epoll
                    // event to retry on. Schedule one more pass.
                    if conn.unsent() < cfg.write_buf_cap
                        && (!conn.conts.is_empty()
                            || (conn.reqs.len() < cfg.max_inflight
                                && !matches!(wire::split_frame(&conn.rbuf), Ok(Frame::Incomplete))))
                    {
                        rearm = true;
                    }
                }
                conn.close
            };
            if close {
                self.close_conn(idx);
            }
        }
        if rearm {
            self.wake.signal();
        }
    }

    fn close_conn(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].take() else {
            return;
        };
        let _ = self.epoll.del(conn.fd.raw());
        self.free.push(idx);
        self.stats.connections.fetch_sub(1, Relaxed);
        NetStats::bump(&self.stats.closed);
        jlog(
            self.db,
            self.journal_on,
            EventKind::ConnClose,
            idx as u32,
            rma_obs::now_ns().saturating_sub(conn.open_ns),
            conn.frames_in,
        );
        // `conn.fd` drops here, closing the socket. Outstanding parts
        // referencing this token fail the generation check and their
        // replies are discarded.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(start: i64, remaining: usize, drop: usize) -> ScanPlan {
        ScanPlan {
            corr: 1,
            slot: 0,
            start,
            remaining,
            drop,
        }
    }

    #[test]
    fn scan_step_finishes_on_short_chunk() {
        let es = vec![(1, 10), (2, 20)];
        let (emit, next) = scan_step(plan(0, 100, 0), es.clone(), 4);
        assert_eq!(emit, es);
        assert!(next.is_none(), "short chunk means the tree is exhausted");
    }

    #[test]
    fn scan_step_continues_from_last_key_dropping_emitted_dups() {
        // Chunk of 4 out of remaining 10: continue at key 4, which has
        // one emitted duplicate to drop next round.
        let es = vec![(1, 10), (2, 20), (4, 40), (4, 41)];
        let (emit, next) = scan_step(plan(0, 10, 0), es.clone(), 4);
        assert_eq!(emit, es);
        let next = next.expect("keeps streaming");
        assert_eq!(next.start, 4);
        assert_eq!(next.drop, 2);
        assert_eq!(next.remaining, 6);

        // Next chunk re-reads the two dups, then advances.
        let es2 = vec![(4, 40), (4, 41), (5, 50), (6, 60)];
        let (emit2, next2) = scan_step(next, es2, 4);
        assert_eq!(emit2, vec![(5, 50), (6, 60)]);
        let next2 = next2.expect("still has remaining and full chunk");
        assert_eq!(next2.start, 6);
        assert_eq!(next2.drop, 1);
        assert_eq!(next2.remaining, 4);
    }

    #[test]
    fn scan_step_accumulates_drop_when_boundary_key_repeats() {
        // First chunk ends mid-run of key 7: drop counts grow across
        // consecutive chunks at the same boundary key.
        let es = vec![(7, 1), (7, 2)];
        let (_, next) = scan_step(plan(7, 10, 0), es, 2);
        let next = next.expect("continues");
        assert_eq!((next.start, next.drop), (7, 2));
        let es2 = vec![(7, 1), (7, 2)];
        // Submitted = min(8 + 2, 4)... chunk 4: got only dups we
        // already sent and the chunk is short → exhausted → done.
        let (emit, fin) = scan_step(next, es2, 4);
        assert!(emit.is_empty());
        assert!(fin.is_none());
    }

    #[test]
    fn scan_step_truncates_an_overlong_duplicate_run() {
        // Full chunk entirely of already-emitted dups: no progress is
        // possible at this key — step past it.
        let (_, next) = scan_step(plan(7, 10, 0), vec![(7, 1), (7, 2)], 2);
        let next = next.expect("continues");
        let (emit, next2) = scan_step(next, vec![(7, 1), (7, 2)], 2);
        assert!(emit.is_empty());
        let next2 = next2.expect("skips forward");
        assert_eq!(next2.start, 8);
        assert_eq!(next2.drop, 0);
    }

    #[test]
    fn scan_step_respects_remaining_budget() {
        let es = vec![(1, 10), (2, 20), (3, 30)];
        let (emit, next) = scan_step(plan(0, 2, 0), es, 3);
        assert_eq!(emit, vec![(1, 10), (2, 20)]);
        assert!(next.is_none(), "client budget exhausted");
    }
}
