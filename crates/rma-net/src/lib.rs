//! Network front-end for the sharded RMA database: a binary wire
//! protocol and a non-blocking TCP server that put the session
//! router behind a socket.
//!
//! The stack, bottom-up:
//!
//! * [`sys`] — safe wrappers over the raw `socket(2)`/`epoll(7)`/
//!   `eventfd(2)` FFI surface declared in `rewiring::libc` (the
//!   offline build forbids registry crates, so the syscall layer is
//!   hand-rolled, like the `mmap` layer before it).
//! * [`wire`] — length-prefixed, CRC-32-checked frames carrying
//!   batches of typed [`rma_db::Op`]s and streamed
//!   [`rma_db::Reply`]s; see the module docs for the frame layout.
//! * [`NetServer`] — a single-threaded epoll event loop that decodes
//!   frames into [`rma_db::Session::submit`], merges tiny requests
//!   from many connections into one router pass (wire-side group
//!   commit), pauses reading from connections that exceed their
//!   in-flight or write-buffer caps (backpressure), and streams big
//!   scans in bounded chunks.
//! * [`WireClient`] — a small blocking client used by the examples,
//!   tests and the `fig23_network` benchmark driver.
//!
//! Connection and protocol activity is counted in [`NetStats`]
//! (rendered Prometheus-style next to the engine's metrics) and
//! journaled as `conn_open` / `conn_close` / `proto_error` events in
//! the engine's maintenance journal.

pub mod client;
pub mod server;
pub mod stats;
pub mod sys;
pub mod wire;

pub use client::{Completed, WireClient};
pub use server::{NetConfig, NetServer};
pub use stats::{NetSnapshot, NetStats};
pub use wire::{ErrorCode, WireError};
