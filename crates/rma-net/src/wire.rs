//! The wire format: length-prefixed, CRC-checked binary frames
//! carrying batches of typed [`Op`]s and their [`Reply`]s.
//!
//! ```text
//! ┌─────────┬─────────┬────────────────────────────────────────────┐
//! │ len u32 │ crc u32 │ payload (len bytes): opcode u8 · body      │
//! │ (LE)    │ (LE)    │                                            │
//! └─────────┴─────────┴────────────────────────────────────────────┘
//! ```
//!
//! `len` counts the payload bytes and is capped at
//! [`MAX_FRAME_PAYLOAD`]; `crc` is the CRC-32 (IEEE) of the payload.
//! A peer that reads an implausible length, an unknown opcode or a
//! checksum mismatch has found a corrupted or hostile stream — there
//! is no way to resynchronise a byte stream after a bad length
//! prefix, so the connection is closed (the server journals a
//! `proto_error` event and closes *only* the offending connection).
//!
//! Two frame kinds exist:
//!
//! * **Request** (client → server): a correlation id chosen by the
//!   client plus a batch of ops, encoded with
//!   [`encode_request`]/decoded with [`decode_request`]. The id comes
//!   back on every response frame, so a client may pipeline many
//!   requests on one connection.
//! * **Response** (server → client): the correlation id, a `last`
//!   marker and a set of `(slot, reply)` items, where `slot` is the
//!   op's position in the request batch. One request may be answered
//!   by **several** response frames: replies stream out as the
//!   router completes them, and a big `Scan` streams its entries in
//!   bounded chunks — the same slot then appears on multiple frames,
//!   each appending entries, until the frame flagged `last`.
//!
//! Write refusals (a database degraded to read-only) travel as a
//! typed [`Reply::Refused`] item carrying an [`ErrorCode`] — a
//! protocol-level answer, not a dropped connection.

use rma_db::{Op, Reply};

/// Hard cap on one frame's payload bytes. Bounds the memory one
/// connection can demand before checksum validation, and therefore
/// also the decode buffer of a well-behaved peer.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// Bytes of the `len | crc` frame header.
pub const FRAME_HEADER: usize = 8;

/// Payload opcode of a request frame.
pub const OPCODE_REQUEST: u8 = 1;
/// Payload opcode of a response frame.
pub const OPCODE_RESPONSE: u8 = 2;

/// Typed protocol error codes carried inside a [`Reply::Refused`]
/// item — the wire face of the engine's degraded read-only mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The database is degraded to read-only (its write-ahead log hit
    /// an I/O failure); the write was refused, reads keep serving.
    /// Maps from [`Reply::Refused`] / `DbError::ReadOnly`.
    ReadOnly = 1,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::ReadOnly),
            _ => None,
        }
    }
}

/// Why a frame or payload failed to decode. [`code`](Self::code)
/// gives the stable numeric form used in the journal and stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the structure it promised.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized(u32),
    /// The payload checksum disagrees with the header CRC.
    BadCrc,
    /// Unknown frame opcode.
    BadOpcode(u8),
    /// Unknown op tag inside a request.
    BadOp(u8),
    /// Unknown reply tag or error code inside a response.
    BadReply(u8),
    /// The payload has bytes left over after its promised content.
    TrailingBytes,
    /// A request reused a correlation id that is still in flight on
    /// the same connection (server-detected, never produced by the
    /// decoders here).
    DuplicateCorr,
}

impl WireError {
    /// Stable numeric code (journaled as the `keys` field of
    /// `proto_error` events).
    pub fn code(self) -> u64 {
        match self {
            WireError::Truncated => 1,
            WireError::Oversized(_) => 2,
            WireError::BadCrc => 3,
            WireError::BadOpcode(_) => 4,
            WireError::BadOp(_) => 5,
            WireError::BadReply(_) => 6,
            WireError::TrailingBytes => 7,
            WireError::DuplicateCorr => 8,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame payload truncated"),
            WireError::Oversized(n) => {
                write!(f, "length prefix {n} exceeds {MAX_FRAME_PAYLOAD}")
            }
            WireError::BadCrc => write!(f, "payload checksum mismatch"),
            WireError::BadOpcode(op) => write!(f, "unknown frame opcode {op}"),
            WireError::BadOp(t) => write!(f, "unknown op tag {t}"),
            WireError::BadReply(t) => write!(f, "unknown reply tag {t}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after payload content"),
            WireError::DuplicateCorr => {
                write!(f, "correlation id reused while still in flight")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// CRC-32 (IEEE 802.3), table-driven — the same checksum the WAL
/// frames use, re-stated locally because 30 lines beat a cross-crate
/// dependency on the durability subsystem. Public so tests can craft
/// checksum-valid malformed frames.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ----------------------------------------------------- frame split --

/// What [`split_frame`] found at the head of a receive buffer.
#[derive(Debug)]
pub enum Frame<'a> {
    /// No complete frame yet — keep reading.
    Incomplete,
    /// One whole, checksum-clean payload; the frame consumed
    /// `consumed` buffer bytes.
    Payload {
        /// The frame's payload (opcode + body).
        payload: &'a [u8],
        /// Total frame bytes (header + payload) to drain.
        consumed: usize,
    },
}

/// Splits the first frame off `buf`. `Ok(Frame::Incomplete)` asks for
/// more bytes; an error is unrecoverable for the stream.
pub fn split_frame(buf: &[u8]) -> Result<Frame<'_>, WireError> {
    if buf.len() < FRAME_HEADER {
        return Ok(Frame::Incomplete);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
    if len as usize > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    let want = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let end = FRAME_HEADER + len as usize;
    if buf.len() < end {
        return Ok(Frame::Incomplete);
    }
    let payload = &buf[FRAME_HEADER..end];
    if crc32(payload) != want {
        return Err(WireError::BadCrc);
    }
    Ok(Frame::Payload {
        payload,
        consumed: end,
    })
}

/// Frames `payload` (already holding opcode + body) into `out`:
/// prepends the length and CRC header.
fn frame_into(out: &mut [u8], payload_start: usize) {
    let len = out.len() - payload_start;
    debug_assert!(len <= MAX_FRAME_PAYLOAD, "encoder produced oversized frame");
    let crc = crc32(&out[payload_start..]);
    let header_at = payload_start - FRAME_HEADER;
    out[header_at..header_at + 4].copy_from_slice(&(len as u32).to_le_bytes());
    out[header_at + 4..header_at + 8].copy_from_slice(&crc.to_le_bytes());
}

// -------------------------------------------------------- requests --

const OP_GET: u8 = 0;
const OP_INSERT: u8 = 1;
const OP_REMOVE: u8 = 2;
const OP_SUM_RANGE: u8 = 3;
const OP_FIRST_GE: u8 = 4;
const OP_SCAN: u8 = 5;

/// Appends one framed request (`corr`, `ops`) to `out`. Panics if
/// the batch exceeds `u16::MAX` ops or the frame cap — callers split
/// batches instead (the server's response frames are bounded the
/// same way).
pub fn encode_request(out: &mut Vec<u8>, corr: u32, ops: &[Op]) {
    assert!(ops.len() <= u16::MAX as usize, "batch exceeds u16 ops");
    out.extend_from_slice(&[0u8; FRAME_HEADER]);
    let start = out.len();
    out.push(OPCODE_REQUEST);
    out.extend_from_slice(&corr.to_le_bytes());
    out.extend_from_slice(&(ops.len() as u16).to_le_bytes());
    for op in ops {
        match *op {
            Op::Get(k) => {
                out.push(OP_GET);
                out.extend_from_slice(&k.to_le_bytes());
            }
            Op::Insert(k, v) => {
                out.push(OP_INSERT);
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
            Op::Remove(k) => {
                out.push(OP_REMOVE);
                out.extend_from_slice(&k.to_le_bytes());
            }
            Op::SumRange { start: s, count } => {
                out.push(OP_SUM_RANGE);
                out.extend_from_slice(&s.to_le_bytes());
                out.extend_from_slice(&(count as u64).to_le_bytes());
            }
            Op::FirstGe(k) => {
                out.push(OP_FIRST_GE);
                out.extend_from_slice(&k.to_le_bytes());
            }
            Op::Scan { start: s, count } => {
                out.push(OP_SCAN);
                out.extend_from_slice(&s.to_le_bytes());
                out.extend_from_slice(&(count as u64).to_le_bytes());
            }
        }
    }
    frame_into(out, start);
}

/// Decodes a request payload (the opcode byte included).
pub fn decode_request(payload: &[u8]) -> Result<(u32, Vec<Op>), WireError> {
    let mut r = Reader::new(payload);
    let opcode = r.u8()?;
    if opcode != OPCODE_REQUEST {
        return Err(WireError::BadOpcode(opcode));
    }
    let corr = r.u32()?;
    let n = r.u16()? as usize;
    let mut ops = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let tag = r.u8()?;
        ops.push(match tag {
            OP_GET => Op::Get(r.i64()?),
            OP_INSERT => Op::Insert(r.i64()?, r.i64()?),
            OP_REMOVE => Op::Remove(r.i64()?),
            OP_SUM_RANGE => Op::SumRange {
                start: r.i64()?,
                count: r.u64()? as usize,
            },
            OP_FIRST_GE => Op::FirstGe(r.i64()?),
            OP_SCAN => Op::Scan {
                start: r.i64()?,
                count: r.u64()? as usize,
            },
            other => return Err(WireError::BadOp(other)),
        });
    }
    r.finish()?;
    Ok((corr, ops))
}

// ------------------------------------------------------- responses --

const REPLY_FOUND: u8 = 0;
const REPLY_INSERTED: u8 = 1;
const REPLY_REMOVED: u8 = 2;
const REPLY_SUM: u8 = 3;
const REPLY_ENTRY: u8 = 4;
const REPLY_ENTRIES: u8 = 5;
const REPLY_REFUSED: u8 = 6;

/// One decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseFrame {
    /// Echo of the request's correlation id.
    pub corr: u32,
    /// True when this frame completes the request: every slot has
    /// been answered and no scan continuation is outstanding.
    pub last: bool,
    /// `(slot, reply)` items. An `Entries` reply for a slot already
    /// seen on an earlier frame *appends* to that slot's entries
    /// (chunked scan streaming).
    pub items: Vec<(u16, Reply)>,
}

/// Appends one framed response to `out`.
pub fn encode_response(out: &mut Vec<u8>, corr: u32, last: bool, items: &[(u16, Reply)]) {
    assert!(items.len() <= u16::MAX as usize, "frame exceeds u16 items");
    out.extend_from_slice(&[0u8; FRAME_HEADER]);
    let start = out.len();
    out.push(OPCODE_RESPONSE);
    out.extend_from_slice(&corr.to_le_bytes());
    out.push(u8::from(last));
    out.extend_from_slice(&(items.len() as u16).to_le_bytes());
    for (slot, reply) in items {
        out.extend_from_slice(&slot.to_le_bytes());
        match reply {
            Reply::Found(v) => {
                out.push(REPLY_FOUND);
                out.push(u8::from(v.is_some()));
                out.extend_from_slice(&v.unwrap_or(0).to_le_bytes());
            }
            Reply::Inserted => out.push(REPLY_INSERTED),
            Reply::Removed(v) => {
                out.push(REPLY_REMOVED);
                out.push(u8::from(v.is_some()));
                out.extend_from_slice(&v.unwrap_or(0).to_le_bytes());
            }
            Reply::Sum { visited, sum } => {
                out.push(REPLY_SUM);
                out.extend_from_slice(&(*visited as u64).to_le_bytes());
                out.extend_from_slice(&sum.to_le_bytes());
            }
            Reply::Entry(e) => {
                out.push(REPLY_ENTRY);
                out.push(u8::from(e.is_some()));
                let (k, v) = e.unwrap_or((0, 0));
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
            Reply::Entries(entries) => {
                out.push(REPLY_ENTRIES);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (k, v) in entries {
                    out.extend_from_slice(&k.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Reply::Refused => {
                out.push(REPLY_REFUSED);
                out.push(ErrorCode::ReadOnly as u8);
            }
        }
    }
    frame_into(out, start);
}

/// Decodes a response payload (the opcode byte included).
pub fn decode_response(payload: &[u8]) -> Result<ResponseFrame, WireError> {
    let mut r = Reader::new(payload);
    let opcode = r.u8()?;
    if opcode != OPCODE_RESPONSE {
        return Err(WireError::BadOpcode(opcode));
    }
    let corr = r.u32()?;
    let last = r.u8()? != 0;
    let n = r.u16()? as usize;
    let mut items = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let slot = r.u16()?;
        let tag = r.u8()?;
        let reply = match tag {
            REPLY_FOUND => {
                let present = r.u8()? != 0;
                let v = r.i64()?;
                Reply::Found(present.then_some(v))
            }
            REPLY_INSERTED => Reply::Inserted,
            REPLY_REMOVED => {
                let present = r.u8()? != 0;
                let v = r.i64()?;
                Reply::Removed(present.then_some(v))
            }
            REPLY_SUM => Reply::Sum {
                visited: r.u64()? as usize,
                sum: r.i64()?,
            },
            REPLY_ENTRY => {
                let present = r.u8()? != 0;
                let k = r.i64()?;
                let v = r.i64()?;
                Reply::Entry(present.then_some((k, v)))
            }
            REPLY_ENTRIES => {
                let count = r.u32()? as usize;
                let mut entries = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    entries.push((r.i64()?, r.i64()?));
                }
                Reply::Entries(entries)
            }
            REPLY_REFUSED => {
                let code = r.u8()?;
                if ErrorCode::from_u8(code).is_none() {
                    return Err(WireError::BadReply(code));
                }
                Reply::Refused
            }
            other => return Err(WireError::BadReply(other)),
        };
        items.push((slot, reply));
    }
    r.finish()?;
    Ok(ResponseFrame { corr, last, items })
}

// ---------------------------------------------------------- reader --

/// Cursor over a payload; every read is bounds-checked into
/// [`WireError::Truncated`].
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::{prop_oneof, proptest, Strategy};

    fn frame(buf: &[u8]) -> (&[u8], usize) {
        match split_frame(buf).expect("clean frame") {
            Frame::Payload { payload, consumed } => (payload, consumed),
            Frame::Incomplete => panic!("expected a whole frame"),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn request_roundtrips_every_op_variant() {
        let ops = vec![
            Op::Get(i64::MIN),
            Op::Insert(-7, i64::MAX),
            Op::Remove(0),
            Op::SumRange {
                start: -1,
                count: usize::MAX >> 1,
            },
            Op::FirstGe(42),
            Op::Scan {
                start: i64::MAX,
                count: 0,
            },
        ];
        let mut buf = Vec::new();
        encode_request(&mut buf, 0xDEAD_BEEF, &ops);
        let (payload, consumed) = frame(&buf);
        assert_eq!(consumed, buf.len());
        let (corr, decoded) = decode_request(payload).expect("decodes");
        assert_eq!(corr, 0xDEAD_BEEF);
        assert_eq!(decoded, ops);
    }

    #[test]
    fn response_roundtrips_every_reply_variant() {
        let items: Vec<(u16, Reply)> = vec![
            (0, Reply::Found(Some(-5))),
            (1, Reply::Found(None)),
            (2, Reply::Inserted),
            (3, Reply::Removed(Some(i64::MIN))),
            (4, Reply::Removed(None)),
            (
                5,
                Reply::Sum {
                    visited: 12,
                    sum: -3,
                },
            ),
            (6, Reply::Entry(Some((1, 2)))),
            (7, Reply::Entry(None)),
            (8, Reply::Entries(vec![(1, 10), (2, 20), (i64::MAX, -1)])),
            (9, Reply::Entries(vec![])),
            (u16::MAX, Reply::Refused),
        ];
        let mut buf = Vec::new();
        encode_response(&mut buf, 7, true, &items);
        let (payload, _) = frame(&buf);
        let f = decode_response(payload).expect("decodes");
        assert_eq!(f.corr, 7);
        assert!(f.last);
        assert_eq!(f.items, items);
    }

    #[test]
    fn incomplete_prefixes_ask_for_more_bytes() {
        let mut buf = Vec::new();
        encode_request(&mut buf, 1, &[Op::Get(5)]);
        for cut in 0..buf.len() {
            match split_frame(&buf[..cut]) {
                Ok(Frame::Incomplete) => {}
                other => panic!("cut {cut}: expected Incomplete, got {other:?}",),
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        let mut buf = ((MAX_FRAME_PAYLOAD + 1) as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 12]);
        assert_eq!(
            split_frame(&buf).unwrap_err(),
            WireError::Oversized((MAX_FRAME_PAYLOAD + 1) as u32)
        );
    }

    #[test]
    fn every_flipped_bit_is_caught_or_reshapes_cleanly() {
        // A flipped bit anywhere in a whole frame must never decode as
        // a *different* valid request: either the CRC catches it, or
        // the flip hit the length prefix and the frame re-shapes (reads
        // as incomplete/oversized — a stalled or killed connection,
        // never silent corruption).
        let ops = vec![Op::Insert(123, 456), Op::Scan { start: 9, count: 3 }];
        let mut clean = Vec::new();
        encode_request(&mut clean, 77, &ops);
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut bad = clean.clone();
                bad[byte] ^= 1 << bit;
                match split_frame(&bad) {
                    Ok(Frame::Payload { payload, .. }) => {
                        // CRC passed — only possible when the flip is
                        // inside the CRC field itself compensating...
                        // which CRC-32 never does for single-bit flips.
                        panic!(
                            "flip {byte}:{bit} produced a clean frame: {:?}",
                            decode_request(payload)
                        );
                    }
                    Ok(Frame::Incomplete) | Err(_) => {}
                }
            }
        }
    }

    #[test]
    fn unknown_opcode_and_tags_are_typed_errors() {
        // Build a valid frame then rewrite payload bytes and re-CRC,
        // so the checksum passes and the *decoder* must object.
        let reframe = |mutate: &dyn Fn(&mut Vec<u8>)| -> Vec<u8> {
            let mut buf = Vec::new();
            encode_request(&mut buf, 3, &[Op::Get(1)]);
            let mut payload = buf[FRAME_HEADER..].to_vec();
            mutate(&mut payload);
            let mut out = (payload.len() as u32).to_le_bytes().to_vec();
            out.extend_from_slice(&crc32(&payload).to_le_bytes());
            out.extend_from_slice(&payload);
            out
        };
        let bad_opcode = reframe(&|p| p[0] = 99);
        let (payload, _) = frame(&bad_opcode);
        assert_eq!(
            decode_request(payload).unwrap_err(),
            WireError::BadOpcode(99)
        );
        let bad_tag = reframe(&|p| p[7] = 200);
        let (payload, _) = frame(&bad_tag);
        assert_eq!(decode_request(payload).unwrap_err(), WireError::BadOp(200));
        let truncated = reframe(&|p| {
            p.truncate(p.len() - 1);
        });
        let (payload, _) = frame(&truncated);
        assert_eq!(decode_request(payload).unwrap_err(), WireError::Truncated);
        let trailing = reframe(&|p| p.push(0));
        let (payload, _) = frame(&trailing);
        assert_eq!(
            decode_request(payload).unwrap_err(),
            WireError::TrailingBytes
        );
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        let key = -(1i64 << 48)..(1i64 << 48);
        let val = -(1i64 << 40)..(1i64 << 40);
        let count = 0usize..1 << 20;
        prop_oneof![
            (key.clone()).prop_map(Op::Get),
            (key.clone(), val).prop_map(|(k, v)| Op::Insert(k, v)),
            (key.clone()).prop_map(Op::Remove),
            (key.clone(), count.clone()).prop_map(|(start, count)| Op::SumRange { start, count }),
            (key.clone()).prop_map(Op::FirstGe),
            (key, count).prop_map(|(start, count)| Op::Scan { start, count }),
        ]
    }

    fn arb_reply() -> impl Strategy<Value = Reply> {
        let key = -(1i64 << 48)..(1i64 << 48);
        let val = -(1i64 << 40)..(1i64 << 40);
        prop_oneof![
            (proptest::any::<bool>(), val.clone())
                .prop_map(|(some, v)| Reply::Found(some.then_some(v))),
            (0i64..1).prop_map(|_| Reply::Inserted),
            (proptest::any::<bool>(), val.clone())
                .prop_map(|(some, v)| Reply::Removed(some.then_some(v))),
            (0usize..1 << 20, val.clone()).prop_map(|(visited, sum)| Reply::Sum { visited, sum }),
            (proptest::any::<bool>(), key.clone(), val.clone())
                .prop_map(|(some, k, v)| Reply::Entry(some.then_some((k, v)))),
            proptest::collection::vec((key, val), 0..64).prop_map(Reply::Entries),
            (0i64..1).prop_map(|_| Reply::Refused),
        ]
    }

    proptest! {
        #[test]
        fn prop_request_roundtrip(
            corr in 0u32..u32::MAX,
            ops in proptest::collection::vec(arb_op(), 0..48),
        ) {
            let mut buf = Vec::new();
            encode_request(&mut buf, corr, &ops);
            let (payload, consumed) = frame(&buf);
            proptest::prop_assert_eq!(consumed, buf.len());
            let (got_corr, got_ops) = decode_request(payload).expect("decodes");
            proptest::prop_assert_eq!(got_corr, corr);
            proptest::prop_assert_eq!(got_ops, ops);
        }

        #[test]
        fn prop_response_roundtrip(
            corr in 0u32..u32::MAX,
            last in proptest::any::<bool>(),
            replies in proptest::collection::vec(arb_reply(), 0..24),
        ) {
            let items: Vec<(u16, Reply)> = replies
                .into_iter()
                .enumerate()
                .map(|(i, r)| (i as u16, r))
                .collect();
            let mut buf = Vec::new();
            encode_response(&mut buf, corr, last, &items);
            let (payload, _) = frame(&buf);
            let f = decode_response(payload).expect("decodes");
            proptest::prop_assert_eq!(f.corr, corr);
            proptest::prop_assert_eq!(f.last, last);
            proptest::prop_assert_eq!(f.items, items);
        }

        #[test]
        fn prop_back_to_back_frames_split_in_order(
            batches in proptest::collection::vec(
                proptest::collection::vec(arb_op(), 0..8), 1..6),
        ) {
            let mut buf = Vec::new();
            for (i, ops) in batches.iter().enumerate() {
                encode_request(&mut buf, i as u32, ops);
            }
            let mut at = 0usize;
            for (i, ops) in batches.iter().enumerate() {
                let (payload, consumed) = frame(&buf[at..]);
                let (corr, got) = decode_request(payload).expect("decodes");
                proptest::prop_assert_eq!(corr, i as u32);
                proptest::prop_assert_eq!(&got, ops);
                at += consumed;
            }
            proptest::prop_assert_eq!(at, buf.len());
        }
    }
}
