//! Connection and protocol counters for the network front-end, plus
//! the per-frame service-time distribution. Shared (`Arc`) between
//! the event-loop thread and [`NetServer::stats`] callers; every
//! update is one relaxed atomic.
//!
//! [`NetServer::stats`]: crate::NetServer::stats

use rma_obs::{Histogram, HistogramSnapshot};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Live counters. Snapshot with [`snapshot`](Self::snapshot).
#[derive(Debug, Default)]
pub struct NetStats {
    /// Currently open connections (gauge).
    pub(crate) connections: AtomicU64,
    /// Connections ever accepted.
    pub(crate) accepted: AtomicU64,
    /// Connections ever closed (peer hangup, protocol error or
    /// shutdown).
    pub(crate) closed: AtomicU64,
    /// Payload + header bytes read off sockets.
    pub(crate) bytes_in: AtomicU64,
    /// Bytes written to sockets.
    pub(crate) bytes_out: AtomicU64,
    /// Request frames decoded.
    pub(crate) frames_in: AtomicU64,
    /// Response frames sent (several per request when scans stream).
    pub(crate) frames_out: AtomicU64,
    /// Malformed frames; each one closed its connection.
    pub(crate) decode_errors: AtomicU64,
    /// Ops answered [`Refused`](rma_db::Reply::Refused) (degraded
    /// read-only mode), reported as a typed wire error code.
    pub(crate) refused_ops: AtomicU64,
    /// Router submits that carried requests from more than one
    /// decode pass entry (wire-side group commit).
    pub(crate) merged_submits: AtomicU64,
    /// Requests that travelled inside a merged submit.
    pub(crate) merged_requests: AtomicU64,
    /// Scan continuation chunks submitted beyond each scan's first.
    pub(crate) scan_chunks: AtomicU64,
    /// Times a connection's reads were paused (in-flight cap or
    /// write-buffer cap reached).
    pub(crate) backpressure_pauses: AtomicU64,
    /// High-water mark of any single connection's write buffer.
    pub(crate) peak_conn_write_buf: AtomicU64,
    /// Decode-to-final-frame wall time per request, nanoseconds.
    pub(crate) frame_service_ns: Histogram,
}

impl NetStats {
    pub(crate) fn bump(field: &AtomicU64) {
        field.fetch_add(1, Relaxed);
    }

    pub(crate) fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Relaxed);
    }

    pub(crate) fn track_peak(&self, wbuf_len: usize) {
        self.peak_conn_write_buf.fetch_max(wbuf_len as u64, Relaxed);
    }

    /// Freezes every counter and the service-time distribution.
    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            connections: self.connections.load(Relaxed),
            accepted: self.accepted.load(Relaxed),
            closed: self.closed.load(Relaxed),
            bytes_in: self.bytes_in.load(Relaxed),
            bytes_out: self.bytes_out.load(Relaxed),
            frames_in: self.frames_in.load(Relaxed),
            frames_out: self.frames_out.load(Relaxed),
            decode_errors: self.decode_errors.load(Relaxed),
            refused_ops: self.refused_ops.load(Relaxed),
            merged_submits: self.merged_submits.load(Relaxed),
            merged_requests: self.merged_requests.load(Relaxed),
            scan_chunks: self.scan_chunks.load(Relaxed),
            backpressure_pauses: self.backpressure_pauses.load(Relaxed),
            peak_conn_write_buf: self.peak_conn_write_buf.load(Relaxed),
            frame_service_ns: self.frame_service_ns.snapshot(),
        }
    }
}

/// A frozen [`NetStats`] snapshot. Render with
/// [`render_text`](Self::render_text) (Prometheus-style, matching the
/// engine's `MetricsSnapshot::render_text` conventions) or `Display`.
#[derive(Debug, Clone)]
pub struct NetSnapshot {
    /// Currently open connections.
    pub connections: u64,
    /// Connections ever accepted.
    pub accepted: u64,
    /// Connections ever closed.
    pub closed: u64,
    /// Bytes read off sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
    /// Request frames decoded.
    pub frames_in: u64,
    /// Response frames sent.
    pub frames_out: u64,
    /// Malformed frames (each closed its connection).
    pub decode_errors: u64,
    /// Ops refused in degraded read-only mode.
    pub refused_ops: u64,
    /// Submits that merged several requests (wire-side group commit).
    pub merged_submits: u64,
    /// Requests that travelled inside a merged submit.
    pub merged_requests: u64,
    /// Scan continuation chunks beyond each scan's first.
    pub scan_chunks: u64,
    /// Read-pause events (backpressure).
    pub backpressure_pauses: u64,
    /// High-water mark of any single connection's write buffer,
    /// bytes.
    pub peak_conn_write_buf: u64,
    /// Decode-to-final-frame wall time per request, nanoseconds.
    pub frame_service_ns: HistogramSnapshot,
}

impl NetSnapshot {
    /// Prometheus-style text exposition of every counter plus the
    /// frame service-time summary.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(
            out,
            "# TYPE rma_net_connections gauge\nrma_net_connections {}",
            self.connections
        );
        let counters: [(&str, u64); 13] = [
            ("rma_net_accepted_total", self.accepted),
            ("rma_net_closed_total", self.closed),
            ("rma_net_bytes_in_total", self.bytes_in),
            ("rma_net_bytes_out_total", self.bytes_out),
            ("rma_net_frames_in_total", self.frames_in),
            ("rma_net_frames_out_total", self.frames_out),
            ("rma_net_decode_errors_total", self.decode_errors),
            ("rma_net_refused_ops_total", self.refused_ops),
            ("rma_net_merged_submits_total", self.merged_submits),
            ("rma_net_merged_requests_total", self.merged_requests),
            ("rma_net_scan_chunks_total", self.scan_chunks),
            (
                "rma_net_backpressure_pauses_total",
                self.backpressure_pauses,
            ),
            (
                "rma_net_peak_conn_write_buf_bytes",
                self.peak_conn_write_buf,
            ),
        ];
        for (name, v) in counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        let h = &self.frame_service_ns;
        let _ = writeln!(out, "# TYPE rma_net_frame_service_ns summary");
        for (q, v) in [("0.5", h.p50()), ("0.95", h.p95()), ("0.99", h.p99())] {
            let _ = writeln!(out, "rma_net_frame_service_ns{{quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(out, "rma_net_frame_service_ns_sum {}", h.sum());
        let _ = writeln!(out, "rma_net_frame_service_ns_count {}", h.count());
        let _ = writeln!(out, "rma_net_frame_service_ns_max {}", h.max());
        out
    }
}

impl std::fmt::Display for NetSnapshot {
    /// A compact human-readable report, one connection line and one
    /// traffic line (the examples print this next to `Db::metrics`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "net: {} conns open ({} accepted, {} closed), \
             {} pauses, peak wbuf {} B",
            self.connections,
            self.accepted,
            self.closed,
            self.backpressure_pauses,
            self.peak_conn_write_buf
        )?;
        let us = |ns: u64| ns as f64 / 1000.0;
        writeln!(
            f,
            "net io: {}/{} frames in/out, {}/{} KiB in/out, \
             {} decode errors, {} refused ops, \
             {} merged submits ({} reqs), {} scan chunks, \
             service p50 {:.1} µs / p99 {:.1} µs",
            self.frames_in,
            self.frames_out,
            self.bytes_in / 1024,
            self.bytes_out / 1024,
            self.decode_errors,
            self.refused_ops,
            self.merged_submits,
            self.merged_requests,
            self.scan_chunks,
            us(self.frame_service_ns.p50()),
            us(self.frame_service_ns.p99()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_text_lists_every_family_once() {
        let stats = NetStats::default();
        NetStats::bump(&stats.accepted);
        NetStats::add(&stats.bytes_in, 123);
        stats.track_peak(777);
        stats.track_peak(5); // smaller: peak must survive
        stats.frame_service_ns.record(1000);
        let text = stats.snapshot().render_text();
        for family in [
            "rma_net_connections",
            "rma_net_accepted_total",
            "rma_net_closed_total",
            "rma_net_bytes_in_total",
            "rma_net_bytes_out_total",
            "rma_net_frames_in_total",
            "rma_net_frames_out_total",
            "rma_net_decode_errors_total",
            "rma_net_refused_ops_total",
            "rma_net_merged_submits_total",
            "rma_net_merged_requests_total",
            "rma_net_scan_chunks_total",
            "rma_net_backpressure_pauses_total",
            "rma_net_peak_conn_write_buf_bytes",
            "rma_net_frame_service_ns",
        ] {
            assert_eq!(
                text.matches(&format!("# TYPE {family} ")).count(),
                1,
                "family {family} missing or duplicated:\n{text}"
            );
        }
        assert!(text.contains("rma_net_accepted_total 1"));
        assert!(text.contains("rma_net_bytes_in_total 123"));
        assert!(text.contains("rma_net_peak_conn_write_buf_bytes 777"));
        assert!(text.contains("rma_net_frame_service_ns_count 1"));
    }
}
