//! The Traditional PMA (§II), with configuration knobs that realise
//! the lower rungs of the paper's feature ladder.
//!
//! In the traditional layout, elements are spread across each segment
//! interleaved with gaps; an occupancy bitmap says which slots hold
//! elements. Scans must test every slot (the branch-misprediction
//! penalty of §I), and insertions shift elements towards the nearest
//! gap. With `clustered: true` the segment layout packs elements to
//! the segment start and keeps a `cards` array instead, eliminating
//! the per-slot tests.
//!
//! The side index is a plain sorted array of segment minima (the
//! "separator keys that PMAs keep on the side"); every rebalance must
//! rewrite the separators of its whole window — the maintenance
//! burden the RMA's static index avoids. `indexed: false` drops the
//! side index entirely and searches the gapped array by binary search
//! (the PM14 design point).

use crate::apma::{apma_targets, ApmaPredictor};
use crate::{Key, Value};

/// How segment capacity is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentSizing {
    /// `O(log₂ C)` slots, re-derived at each resize — the traditional
    /// choice (rounded to a power of two).
    Log2,
    /// Fixed block-size segments (the RMA's choice). Must be a power
    /// of two.
    Fixed(usize),
}

/// Rebalancing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceStrategy {
    /// Spread elements evenly (TPMA).
    Even,
    /// APMA-style uneven spread driven by hammer counters.
    Apma,
}

/// Configuration of a [`Tpma`].
#[derive(Debug, Clone, Copy)]
pub struct TpmaConfig {
    /// Segment sizing policy.
    pub segment_sizing: SegmentSizing,
    /// Clustered (packed) segment layout instead of interleaved gaps.
    pub clustered: bool,
    /// Maintain the side index of segment minima.
    pub indexed: bool,
    /// Even or APMA rebalancing.
    pub rebalance: RebalanceStrategy,
}

impl TpmaConfig {
    /// The paper's "Baseline" configuration.
    pub fn traditional() -> Self {
        TpmaConfig {
            segment_sizing: SegmentSizing::Log2,
            clustered: false,
            indexed: true,
            rebalance: RebalanceStrategy::Even,
        }
    }

    /// Baseline + clustering (ladder rung 2).
    pub fn clustered() -> Self {
        TpmaConfig {
            clustered: true,
            ..Self::traditional()
        }
    }

    /// Baseline + clustering + fixed-size segments (ladder rung 3).
    pub fn fixed_segments(b: usize) -> Self {
        TpmaConfig {
            segment_sizing: SegmentSizing::Fixed(b),
            clustered: true,
            indexed: true,
            rebalance: RebalanceStrategy::Even,
        }
    }

    /// The PM14 design point: no side index.
    pub fn pm14() -> Self {
        TpmaConfig {
            indexed: false,
            ..Self::traditional()
        }
    }

    /// TPMA with the APMA rebalancer (Fig. 11 comparator).
    pub fn apma() -> Self {
        TpmaConfig {
            rebalance: RebalanceStrategy::Apma,
            ..Self::traditional()
        }
    }
}

// Update-oriented thresholds, as in prior PMA implementations.
const RHO_1: f64 = 0.08;
const RHO_H: f64 = 0.3;
const TAU_H: f64 = 0.75;
const TAU_1: f64 = 1.0;

/// A traditional packed memory array.
#[derive(Debug)]
pub struct Tpma {
    cfg: TpmaConfig,
    seg_size: usize,
    keys: Vec<Key>,
    vals: Vec<Value>,
    /// Occupancy bitmap (interleaved layout only).
    occ: Vec<u64>,
    cards: Vec<u32>,
    /// Side index: `minima[s]` separates segment `s − 1` from `s`.
    minima: Vec<Key>,
    len: usize,
    predictor: Option<ApmaPredictor>,
    /// Rebalances executed.
    pub rebalances: u64,
    /// Resizes executed.
    pub resizes: u64,
}

impl Tpma {
    /// Creates an empty PMA.
    pub fn new(cfg: TpmaConfig) -> Self {
        if let SegmentSizing::Fixed(b) = cfg.segment_sizing {
            assert!(b >= 4 && b.is_power_of_two(), "bad fixed segment size");
        }
        let seg_size = Self::segment_size_for(&cfg, 16);
        let capacity = seg_size;
        let predictor =
            matches!(cfg.rebalance, RebalanceStrategy::Apma).then(|| ApmaPredictor::new(1));
        Tpma {
            cfg,
            seg_size,
            keys: vec![0; capacity],
            vals: vec![0; capacity],
            occ: vec![0; capacity.div_ceil(64)],
            cards: vec![0],
            minima: vec![Key::MIN],
            len: 0,
            predictor,
            rebalances: 0,
            resizes: 0,
        }
    }

    fn segment_size_for(cfg: &TpmaConfig, capacity: usize) -> usize {
        match cfg.segment_sizing {
            SegmentSizing::Fixed(b) => b,
            SegmentSizing::Log2 => {
                let bits = usize::BITS - capacity.max(2).leading_zeros();
                (bits as usize).next_power_of_two().max(4)
            }
        }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Current segment size.
    pub fn segment_size(&self) -> usize {
        self.seg_size
    }

    /// Resident bytes.
    pub fn memory_footprint(&self) -> usize {
        self.keys.capacity() * 8
            + self.vals.capacity() * 8
            + self.occ.capacity() * 8
            + self.cards.capacity() * 4
            + self.minima.capacity() * 8
    }

    fn seg_count(&self) -> usize {
        self.cards.len()
    }

    fn height(&self) -> usize {
        let m = self.seg_count();
        if m <= 1 {
            1
        } else {
            (usize::BITS - (m - 1).leading_zeros()) as usize + 1
        }
    }

    fn tau(&self, level: usize, height: usize) -> f64 {
        if height <= 1 {
            return TAU_1;
        }
        let t = (level - 1) as f64 / (height - 1) as f64;
        TAU_1 + t * (TAU_H - TAU_1)
    }

    fn rho(&self, level: usize, height: usize) -> f64 {
        if height <= 1 {
            return RHO_1;
        }
        let t = (level - 1) as f64 / (height - 1) as f64;
        RHO_1 + t * (RHO_H - RHO_1)
    }

    // ------------------------------------------------------ bitmap --

    #[inline]
    fn occupied(&self, slot: usize) -> bool {
        self.occ[slot / 64] & (1 << (slot % 64)) != 0
    }

    #[inline]
    fn set_occupied(&mut self, slot: usize, on: bool) {
        if on {
            self.occ[slot / 64] |= 1 << (slot % 64);
        } else {
            self.occ[slot / 64] &= !(1 << (slot % 64));
        }
    }

    // ------------------------------------------------------ search --

    /// Segment whose range contains `k`.
    fn find_segment(&self, k: Key) -> usize {
        if self.cfg.indexed {
            self.minima[1..].partition_point(|&m| m <= k)
        } else {
            // PM14: binary search on the gapped array itself.
            let slot = self.gapped_lower_bound(k);
            slot.min(self.capacity() - 1) / self.seg_size
        }
    }

    /// Leftmost segment that can contain an element `>= k` (for
    /// lower-bound scans; exact-match search routes right instead).
    fn find_segment_lb(&self, k: Key) -> usize {
        if self.cfg.indexed {
            self.minima[1..].partition_point(|&m| m < k)
        } else {
            let slot = self.gapped_lower_bound(k);
            slot.min(self.capacity() - 1) / self.seg_size
        }
    }

    /// First occupied slot holding a key `>= k`, or `capacity()`.
    fn gapped_lower_bound(&self, k: Key) -> usize {
        let (mut lo, mut hi) = (0usize, self.capacity());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match (mid..hi).find(|&s| self.occupied(s)) {
                None => hi = mid,
                Some(r) => {
                    if self.keys[r] < k {
                        lo = r + 1;
                    } else {
                        hi = mid;
                    }
                }
            }
        }
        (lo..self.capacity())
            .find(|&s| self.occupied(s))
            .unwrap_or(self.capacity())
    }

    /// Occupied slots of segment `seg`, in slot (= key) order.
    fn seg_slots(&self, seg: usize) -> impl Iterator<Item = usize> + '_ {
        let base = seg * self.seg_size;
        if self.cfg.clustered {
            base..base + self.cards[seg] as usize
        } else {
            base..base + self.seg_size
        }
        .filter(move |&s| self.cfg.clustered || self.occupied(s))
    }

    /// Returns a value stored under `k`, if any.
    pub fn get(&self, k: Key) -> Option<Value> {
        let seg = self.find_segment(k);
        for s in self.seg_slots(seg) {
            if self.keys[s] == k {
                return Some(self.vals[s]);
            }
            if self.keys[s] > k {
                return None;
            }
        }
        None
    }

    // -------------------------------------------------------- scan --

    /// Sums up to `count` values from the first key `>= start`. The
    /// interleaved layout pays a per-slot occupancy branch; the
    /// clustered layout runs dense loops.
    pub fn sum_range(&self, start: Key, count: usize) -> (usize, i64) {
        if self.len == 0 || count == 0 {
            return (0, 0);
        }
        let mut visited = 0usize;
        let mut sum = 0i64;
        if self.cfg.clustered {
            let mut seg = self.find_segment_lb(start);
            let mut pos = self.clustered_lower_bound(seg, start);
            while visited < count && seg < self.seg_count() {
                let base = seg * self.seg_size;
                let card = self.cards[seg] as usize;
                let take = (card - pos).min(count - visited);
                for &v in &self.vals[base + pos..base + pos + take] {
                    sum = sum.wrapping_add(v);
                }
                visited += take;
                seg += 1;
                pos = 0;
            }
        } else {
            let mut slot = if self.cfg.indexed {
                let seg = self.find_segment_lb(start);
                let base = seg * self.seg_size;
                (base..self.capacity())
                    .find(|&s| self.occupied(s) && self.keys[s] >= start)
                    .unwrap_or(self.capacity())
            } else {
                self.gapped_lower_bound(start)
            };
            while visited < count && slot < self.capacity() {
                if self.occupied(slot) {
                    sum = sum.wrapping_add(self.vals[slot]);
                    visited += 1;
                }
                slot += 1;
            }
        }
        (visited, sum)
    }

    fn clustered_lower_bound(&self, seg: usize, k: Key) -> usize {
        let base = seg * self.seg_size;
        let card = self.cards[seg] as usize;
        self.keys[base..base + card].partition_point(|&x| x < k)
    }

    /// Iterates over all elements in key order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, Value)> + '_ {
        (0..self.seg_count()).flat_map(move |seg| {
            self.seg_slots(seg)
                .map(move |s| (self.keys[s], self.vals[s]))
        })
    }

    // ------------------------------------------------------ insert --

    /// Inserts `(k, v)`, keeping duplicates.
    pub fn insert(&mut self, k: Key, v: Value) {
        let mut seg = self.find_segment(k);
        if self.cards[seg] as usize == self.seg_size {
            self.rebalance_for_insert(seg);
            seg = self.find_segment(k);
            debug_assert!((self.cards[seg] as usize) < self.seg_size);
        }
        if self.cfg.clustered {
            self.insert_clustered(seg, k, v);
        } else {
            self.insert_interleaved(seg, k, v);
        }
        self.cards[seg] += 1;
        if let Some(p) = &mut self.predictor {
            p.on_insert(seg);
        }
        self.len += 1;
    }

    fn insert_clustered(&mut self, seg: usize, k: Key, v: Value) {
        let base = seg * self.seg_size;
        let card = self.cards[seg] as usize;
        let pos = self.clustered_lower_bound(seg, k);
        self.keys
            .copy_within(base + pos..base + card, base + pos + 1);
        self.vals
            .copy_within(base + pos..base + card, base + pos + 1);
        self.keys[base + pos] = k;
        self.vals[base + pos] = v;
        if pos == 0 && self.cfg.indexed && seg > 0 {
            self.minima[seg] = k;
        }
    }

    fn insert_interleaved(&mut self, seg: usize, k: Key, v: Value) {
        let base = seg * self.seg_size;
        let end = base + self.seg_size;
        // Slot of the first occupied element with key >= k.
        let idx = (base..end)
            .find(|&s| self.occupied(s) && self.keys[s] >= k)
            .unwrap_or(end);
        // Prefer shifting right towards the nearest free slot.
        if let Some(gap) = (idx..end).find(|&s| !self.occupied(s)) {
            // Slots [idx, gap) are occupied; shift them one right.
            for s in (idx..gap).rev() {
                self.keys[s + 1] = self.keys[s];
                self.vals[s + 1] = self.vals[s];
            }
            if gap > idx {
                self.set_occupied(gap, true);
            } else {
                self.set_occupied(idx, true);
            }
            self.keys[idx.min(gap)] = k;
            self.vals[idx.min(gap)] = v;
            if gap > idx {
                // idx stays occupied; nothing else to flip.
            }
        } else {
            // Shift left: find the nearest free slot before idx.
            let gap = (base..idx)
                .rev()
                .find(|&s| !self.occupied(s))
                .expect("segment has a free slot");
            for s in gap..idx - 1 {
                self.keys[s] = self.keys[s + 1];
                self.vals[s] = self.vals[s + 1];
            }
            self.keys[idx - 1] = k;
            self.vals[idx - 1] = v;
            self.set_occupied(gap, true);
        }
        if self.cfg.indexed && seg > 0 {
            // Maintain the separator when the minimum changed.
            if k < self.minima[seg] || self.cards[seg] == 0 {
                self.minima[seg] = k;
            }
        }
    }

    // ------------------------------------------------------ delete --

    /// Removes one element with key exactly `k`.
    pub fn remove(&mut self, k: Key) -> Option<Value> {
        if self.len == 0 {
            return None;
        }
        let seg = self.find_segment(k);
        let slot = self.seg_slots(seg).find(|&s| self.keys[s] == k)?;
        Some(self.remove_slot(seg, slot).1)
    }

    /// Removes the first element `>= k` (or the maximum); the mixed
    /// workload's delete operator. `None` only when empty.
    pub fn remove_successor(&mut self, k: Key) -> Option<(Key, Value)> {
        if self.len == 0 {
            return None;
        }
        let seg = self.find_segment_lb(k);
        for s in seg..self.seg_count() {
            let hit = self.seg_slots(s).find(|&x| self.keys[x] >= k);
            if let Some(slot) = hit {
                return Some(self.remove_slot(s, slot));
            }
        }
        // Fall back to the global maximum.
        let s = (0..self.seg_count())
            .rev()
            .find(|&s| self.cards[s] > 0)
            .expect("non-empty");
        let slot = self.seg_slots(s).last().expect("non-empty segment");
        Some(self.remove_slot(s, slot))
    }

    fn remove_slot(&mut self, seg: usize, slot: usize) -> (Key, Value) {
        let out = (self.keys[slot], self.vals[slot]);
        if self.cfg.clustered {
            let base = seg * self.seg_size;
            let card = self.cards[seg] as usize;
            self.keys.copy_within(slot + 1..base + card, slot);
            self.vals.copy_within(slot + 1..base + card, slot);
            if self.cfg.indexed && seg > 0 && slot == base && card > 1 {
                self.minima[seg] = self.keys[base];
            }
        } else {
            self.set_occupied(slot, false);
            if self.cfg.indexed && seg > 0 && self.cards[seg] > 1 {
                let base = seg * self.seg_size;
                if let Some(first) = (base..base + self.seg_size).find(|&s| self.occupied(s)) {
                    self.minima[seg] = self.keys[first];
                }
            }
        }
        self.cards[seg] -= 1;
        self.len -= 1;
        self.after_delete(seg);
        out
    }

    // ----------------------------------------- rebalance machinery --

    fn rebalance_for_insert(&mut self, seg: usize) {
        let m = self.seg_count();
        let height = self.height();
        let mut w = 2usize;
        let mut level = 2usize;
        while level <= height {
            let start = (seg / w) * w;
            let end = (start + w).min(m);
            let cap = (end - start) * self.seg_size;
            let cards: usize = self.cards[start..end].iter().map(|&c| c as usize).sum();
            let max = ((self.tau(level, height) * cap as f64).floor() as usize)
                .min((end - start) * (self.seg_size - 1));
            if cards <= max {
                self.rebalance_window(start..end);
                return;
            }
            w *= 2;
            level += 1;
        }
        self.resize(self.capacity() * 2);
    }

    fn after_delete(&mut self, seg: usize) {
        let height = self.height();
        let min_seg = (self.rho(1, height) * self.seg_size as f64).ceil() as usize;
        if self.cards[seg] as usize >= min_seg {
            return;
        }
        let m = self.seg_count();
        let mut w = 2usize;
        let mut level = 2usize;
        while level <= height {
            let start = (seg / w) * w;
            let end = (start + w).min(m);
            let cap = (end - start) * self.seg_size;
            let cards: usize = self.cards[start..end].iter().map(|&c| c as usize).sum();
            if cards >= (self.rho(level, height) * cap as f64).ceil() as usize {
                self.rebalance_window(start..end);
                return;
            }
            w *= 2;
            level += 1;
        }
        if m > 1 {
            self.resize(self.capacity() / 2);
        }
    }

    fn window_targets(&mut self, segs: std::ops::Range<usize>, total: usize) -> Vec<usize> {
        let m = segs.len();
        let b = self.seg_size;
        match (&self.cfg.rebalance, &self.predictor) {
            (RebalanceStrategy::Apma, Some(_)) => {
                let p = self.predictor.as_ref().expect("apma predictor");
                let weights = p.weights(segs.clone());
                let t = apma_targets(b, total, &weights);
                self.predictor.as_mut().expect("apma").decay(segs);
                t
            }
            _ => {
                let base = total / m;
                let rem = total % m;
                (0..m).map(|i| base + usize::from(i < rem)).collect()
            }
        }
    }

    fn rebalance_window(&mut self, segs: std::ops::Range<usize>) {
        self.rebalances += 1;
        let total: usize = self.cards[segs.clone()].iter().map(|&c| c as usize).sum();
        let targets = self.window_targets(segs.clone(), total);
        // Gather.
        let mut sk = Vec::with_capacity(total);
        let mut sv = Vec::with_capacity(total);
        for s in segs.clone() {
            for slot in self.seg_slots(s) {
                sk.push(self.keys[slot]);
                sv.push(self.vals[slot]);
            }
        }
        // Scatter.
        self.scatter(segs.clone(), &targets, &sk, &sv);
        self.refresh_minima(segs);
    }

    /// Writes `total` gathered elements back into `segs` with the
    /// given per-segment targets, in the configured layout.
    fn scatter(
        &mut self,
        segs: std::ops::Range<usize>,
        targets: &[usize],
        sk: &[Key],
        sv: &[Value],
    ) {
        let b = self.seg_size;
        let mut cursor = 0usize;
        for (i, s) in segs.clone().enumerate() {
            let base = s * b;
            let t = targets[i];
            if self.cfg.clustered {
                self.keys[base..base + t].copy_from_slice(&sk[cursor..cursor + t]);
                self.vals[base..base + t].copy_from_slice(&sv[cursor..cursor + t]);
            } else {
                // Interleave: element j of the segment goes to slot
                // floor(j * b / t), spreading gaps evenly.
                for slot in base..base + b {
                    self.set_occupied(slot, false);
                }
                for j in 0..t {
                    let slot = base + j * b / t.max(1);
                    // Slots are strictly increasing since t <= b.
                    self.keys[slot] = sk[cursor + j];
                    self.vals[slot] = sv[cursor + j];
                    self.set_occupied(slot, true);
                }
            }
            self.cards[s] = t as u32;
            cursor += t;
        }
    }

    fn refresh_minima(&mut self, segs: std::ops::Range<usize>) {
        if !self.cfg.indexed {
            return;
        }
        let window_max = segs
            .clone()
            .rev()
            .filter(|&s| self.cards[s] > 0)
            .flat_map(|s| self.seg_slots(s).last())
            .next()
            .map(|slot| self.keys[slot]);
        let Some(window_max) = window_max else { return };
        let mut next_sep = window_max.saturating_add(1);
        for s in segs.rev() {
            if self.cards[s] > 0 {
                let first = self.seg_slots(s).next().expect("non-empty");
                next_sep = self.keys[first];
            }
            if s > 0 {
                self.minima[s] = next_sep;
            }
        }
    }

    fn resize(&mut self, new_capacity: usize) {
        self.resizes += 1;
        let new_seg_size = Self::segment_size_for(&self.cfg, new_capacity);
        let new_capacity = new_capacity.max(new_seg_size);
        let new_segs = (new_capacity / new_seg_size).max(1);
        let new_capacity = new_segs * new_seg_size;
        debug_assert!(self.len <= new_capacity);

        let mut sk = Vec::with_capacity(self.len);
        let mut sv = Vec::with_capacity(self.len);
        for s in 0..self.seg_count() {
            for slot in self.seg_slots(s) {
                sk.push(self.keys[slot]);
                sv.push(self.vals[slot]);
            }
        }
        self.keys = vec![0; new_capacity];
        self.vals = vec![0; new_capacity];
        self.occ = vec![0; new_capacity.div_ceil(64)];
        self.cards = vec![0; new_segs];
        self.seg_size = new_seg_size;
        self.minima = vec![Key::MIN; new_segs];
        let base = self.len / new_segs;
        let rem = self.len % new_segs;
        let targets: Vec<usize> = (0..new_segs).map(|i| base + usize::from(i < rem)).collect();
        self.scatter(0..new_segs, &targets, &sk, &sv);
        self.refresh_minima(0..new_segs);
        if let Some(p) = &mut self.predictor {
            p.reset(new_segs);
        }
    }

    // -------------------------------------------------- validation --

    /// Structural check; test helper.
    pub fn check_invariants(&self) {
        let mut prev: Option<Key> = None;
        let mut count = 0usize;
        for s in 0..self.seg_count() {
            let mut seg_count = 0usize;
            for slot in self.seg_slots(s) {
                if let Some(p) = prev {
                    assert!(p <= self.keys[slot], "out of order at slot {slot}");
                }
                prev = Some(self.keys[slot]);
                count += 1;
                seg_count += 1;
            }
            assert_eq!(seg_count, self.cards[s] as usize, "cards mismatch at {s}");
        }
        assert_eq!(count, self.len, "len mismatch");
        if self.cfg.indexed {
            let mut prev_sep = Key::MIN;
            for s in 1..self.seg_count() {
                assert!(self.minima[s] >= prev_sep, "minima not monotone at {s}");
                prev_sep = self.minima[s];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_configs() -> Vec<TpmaConfig> {
        vec![
            TpmaConfig::traditional(),
            TpmaConfig::clustered(),
            TpmaConfig::fixed_segments(16),
            TpmaConfig::pm14(),
            TpmaConfig::apma(),
        ]
    }

    #[test]
    fn insert_get_across_all_configs() {
        for cfg in all_configs() {
            let mut p = Tpma::new(cfg);
            for k in [50i64, 10, 90, 30, 70, 20, 80, 40, 60, 0] {
                p.insert(k, k * 2);
            }
            p.check_invariants();
            for k in [0i64, 10, 20, 30, 40, 50, 60, 70, 80, 90] {
                assert_eq!(p.get(k), Some(k * 2), "{cfg:?} get {k}");
            }
            assert_eq!(p.get(55), None);
        }
    }

    #[test]
    fn thousands_of_random_inserts() {
        for cfg in all_configs() {
            let mut p = Tpma::new(cfg);
            let mut x = 7u64;
            for i in 0..5000i64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                p.insert((x >> 40) as i64, i);
            }
            p.check_invariants();
            assert_eq!(p.len(), 5000);
            let keys: Vec<i64> = p.iter().map(|(k, _)| k).collect();
            assert!(keys.windows(2).all(|w| w[0] <= w[1]), "{cfg:?}");
            assert!(p.resizes > 0);
        }
    }

    #[test]
    fn sequential_inserts_all_configs() {
        for cfg in all_configs() {
            let mut p = Tpma::new(cfg);
            for k in 0..3000i64 {
                p.insert(k, k);
            }
            p.check_invariants();
            assert_eq!(p.len(), 3000, "{cfg:?}");
            assert_eq!(p.get(2999), Some(2999));
        }
    }

    #[test]
    fn scan_matches_content() {
        for cfg in all_configs() {
            let mut p = Tpma::new(cfg);
            for k in 0..2000i64 {
                p.insert(k, 1);
            }
            let (n, sum) = p.sum_range(500, 300);
            assert_eq!((n, sum), (300, 300), "{cfg:?}");
            let (n, _) = p.sum_range(1990, 100);
            assert_eq!(n, 10);
        }
    }

    #[test]
    fn removals_and_shrink() {
        for cfg in all_configs() {
            let mut p = Tpma::new(cfg);
            for k in 0..2000i64 {
                p.insert(k, k);
            }
            for k in 0..1900i64 {
                assert_eq!(p.remove(k), Some(k), "{cfg:?} remove {k}");
            }
            p.check_invariants();
            assert_eq!(p.len(), 100);
            assert!(p.resizes >= 2, "{cfg:?} expected shrink resizes");
        }
    }

    #[test]
    fn remove_successor_semantics() {
        let mut p = Tpma::new(TpmaConfig::traditional());
        for k in [10i64, 20, 30] {
            p.insert(k, k);
        }
        assert_eq!(p.remove_successor(15), Some((20, 20)));
        assert_eq!(p.remove_successor(100), Some((30, 30)));
        assert_eq!(p.remove_successor(0), Some((10, 10)));
        assert_eq!(p.remove_successor(0), None);
    }

    #[test]
    fn mixed_churn_against_oracle() {
        use std::collections::BTreeMap;
        for cfg in [TpmaConfig::traditional(), TpmaConfig::clustered()] {
            let mut p = Tpma::new(cfg);
            let mut oracle: BTreeMap<i64, usize> = BTreeMap::new();
            let mut x = 5u64;
            for step in 0..10_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let k = ((x >> 53) & 0x3FF) as i64;
                if step % 3 == 2 {
                    let want = oracle
                        .range(k..)
                        .next()
                        .map(|(&kk, _)| kk)
                        .or_else(|| oracle.keys().next_back().copied());
                    let got = p.remove_successor(k).map(|(kk, _)| kk);
                    assert_eq!(got, want, "{cfg:?} step {step}");
                    if let Some(kk) = want {
                        let c = oracle.get_mut(&kk).expect("key");
                        *c -= 1;
                        if *c == 0 {
                            oracle.remove(&kk);
                        }
                    }
                } else {
                    p.insert(k, step as i64);
                    *oracle.entry(k).or_insert(0) += 1;
                }
            }
            p.check_invariants();
        }
    }

    #[test]
    fn duplicates_supported() {
        for cfg in all_configs() {
            let mut p = Tpma::new(cfg);
            for i in 0..300 {
                p.insert(5, i);
            }
            p.check_invariants();
            assert_eq!(p.len(), 300, "{cfg:?}");
            assert!(p.get(5).is_some());
        }
    }

    #[test]
    fn gapped_binary_search_agrees_with_linear() {
        let mut p = Tpma::new(TpmaConfig::pm14());
        for k in (0..1000i64).step_by(7) {
            p.insert(k, k);
        }
        for probe in 0..1005i64 {
            let expect = p.iter().find(|&(k, _)| k >= probe).map(|(k, _)| k);
            let got = {
                let slot = p.gapped_lower_bound(probe);
                (slot < p.capacity()).then(|| p.keys[slot])
            };
            assert_eq!(got, expect, "probe {probe}");
        }
    }

    #[test]
    fn apma_rebalances_unevenly_under_hammering() {
        let mut p = Tpma::new(TpmaConfig::apma());
        for k in 0..5000i64 {
            p.insert(k, k); // sorted hammering at the array tail
        }
        p.check_invariants();
        assert_eq!(p.len(), 5000);
    }

    #[test]
    fn log2_segment_size_tracks_capacity() {
        let mut p = Tpma::new(TpmaConfig::traditional());
        let small = p.segment_size();
        for k in 0..100_000i64 {
            p.insert(k, k);
        }
        assert!(p.segment_size() >= small);
        assert!(p.segment_size() <= 64, "log2 sizing stays small");
    }
}
