//! Hammer prediction for the Adaptive PMA (Bender & Hu, TODS 2007),
//! re-implemented.
//!
//! APMA's predictor tracks where recent insertions landed and, during
//! a rebalance, allocates *gaps* to regions proportionally to their
//! predicted insertion pressure (subject to the density thresholds).
//! Unlike the RMA's Detector, there are no marked intervals and no
//! sequential-pattern counters: the prediction is purely positional —
//! which is exactly what makes it vulnerable to the ping-pong effect
//! on sorted sequential insertions (§IV of the RMA paper): the
//! predictor piles gaps onto the segment that was hammered, but the
//! *next* keys of an ascending run fall just past the compacted
//! elements, into a region now denser than an even rebalance would
//! have left it.

/// Per-segment exponential hammer counters.
#[derive(Debug, Clone)]
pub struct ApmaPredictor {
    counters: Vec<u32>,
}

impl ApmaPredictor {
    /// A predictor for `num_segments` segments.
    pub fn new(num_segments: usize) -> Self {
        ApmaPredictor {
            counters: vec![0; num_segments],
        }
    }

    /// Number of tracked segments.
    pub fn num_segments(&self) -> usize {
        self.counters.len()
    }

    /// Records an insertion into `seg`.
    #[inline]
    pub fn on_insert(&mut self, seg: usize) {
        self.counters[seg] = self.counters[seg].saturating_add(1);
    }

    /// Resets after a resize.
    pub fn reset(&mut self, num_segments: usize) {
        self.counters.clear();
        self.counters.resize(num_segments, 0);
    }

    /// Decays the counters of a window after it was rebalanced, so
    /// old hammering fades.
    pub fn decay(&mut self, segs: std::ops::Range<usize>) {
        for s in segs {
            self.counters[s] /= 2;
        }
    }

    /// Insertion-pressure weight of each segment in `segs`
    /// (`1 + counter`, so unhammered segments still get a share).
    pub fn weights(&self, segs: std::ops::Range<usize>) -> Vec<u64> {
        segs.map(|s| 1 + self.counters[s] as u64).collect()
    }
}

/// Computes APMA target cardinalities for a window: gaps are assigned
/// proportionally to the hammer `weights`, then cardinalities are
/// clamped so every segment keeps at least one free slot and no
/// segment goes negative. `total` elements over `seg_size`-slot
/// segments.
pub fn apma_targets(seg_size: usize, total: usize, weights: &[u64]) -> Vec<usize> {
    let m = weights.len();
    debug_assert!(total <= m * seg_size);
    let gaps_total = m * seg_size - total;
    let weight_sum: u64 = weights.iter().sum();
    // Initial gap assignment proportional to weight.
    let mut gaps: Vec<usize> = weights
        .iter()
        .map(|&w| ((gaps_total as u128 * w as u128) / weight_sum as u128) as usize)
        .collect();
    // Distribute the rounding remainder to the heaviest segments.
    let mut assigned: usize = gaps.iter().sum();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(weights[i]));
    let mut oi = 0;
    while assigned < gaps_total {
        let i = order[oi % m];
        if gaps[i] < seg_size {
            gaps[i] += 1;
            assigned += 1;
        }
        oi += 1;
    }
    // Clamp: a segment's gaps cannot exceed its size; push overflow
    // gap assignments to the next segments.
    let mut carry = 0usize;
    for g in gaps.iter_mut() {
        *g += carry;
        carry = g.saturating_sub(seg_size);
        *g = (*g).min(seg_size);
    }
    // Any residual carry goes right-to-left.
    for g in gaps.iter_mut().rev() {
        if carry == 0 {
            break;
        }
        let room = seg_size - *g;
        let take = room.min(carry);
        *g += take;
        carry -= take;
    }
    debug_assert_eq!(carry, 0);
    let mut targets: Vec<usize> = gaps.iter().map(|&g| seg_size - g).collect();
    // Keep one free slot per segment where possible, mirroring the
    // RMA's progress guarantee.
    if total <= m * (seg_size - 1) {
        for i in 0..m {
            while targets[i] >= seg_size {
                let j = (0..m).min_by_key(|&j| targets[j]).expect("non-empty");
                targets[i] -= 1;
                targets[j] += 1;
            }
        }
    }
    debug_assert_eq!(targets.iter().sum::<usize>(), total);
    targets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_give_even_spread() {
        let t = apma_targets(8, 16, &[1, 1, 1, 1]);
        assert_eq!(t, vec![4, 4, 4, 4]);
    }

    #[test]
    fn hammered_segment_receives_more_gaps() {
        let t = apma_targets(8, 16, &[100, 1, 1, 1]);
        assert!(
            t[0] <= t[1] && t[0] < t[3],
            "hammered segment must end sparser: {t:?}"
        );
        assert_eq!(t.iter().sum::<usize>(), 16);
    }

    #[test]
    fn targets_never_exceed_capacity() {
        for total in [0usize, 10, 20, 28] {
            let t = apma_targets(8, total, &[50, 1, 1, 200]);
            assert!(t.iter().all(|&x| x <= 8), "{t:?}");
            assert_eq!(t.iter().sum::<usize>(), total);
        }
    }

    #[test]
    fn predictor_counts_and_decays() {
        let mut p = ApmaPredictor::new(4);
        for _ in 0..10 {
            p.on_insert(2);
        }
        assert_eq!(p.weights(0..4), vec![1, 1, 11, 1]);
        p.decay(0..4);
        assert_eq!(p.weights(0..4), vec![1, 1, 6, 1]);
        p.reset(2);
        assert_eq!(p.num_segments(), 2);
        assert_eq!(p.weights(0..2), vec![1, 1]);
    }

    #[test]
    fn extreme_weight_is_clamped_by_capacity() {
        // One segment wants all 24 gaps but can hold at most 8.
        let t = apma_targets(8, 8, &[u32::MAX as u64, 1, 1, 1]);
        assert_eq!(t.iter().sum::<usize>(), 8);
        assert!(t.iter().all(|&x| x <= 8));
        assert!(t[0] <= 1, "hammered segment should be near-empty: {t:?}");
        assert!(t[3] >= 6, "cold segment should stay dense: {t:?}");
    }
}
