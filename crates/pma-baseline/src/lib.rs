//! Traditional PMA baselines (§II) and the APMA re-implementation.
//!
//! This crate provides the comparison points *below* the RMA in the
//! paper's feature ladder (Fig. 14) and the stand-ins for the related
//! work of Fig. 1a:
//!
//! * [`Tpma`] with [`TpmaConfig::traditional`] — the paper's
//!   "Baseline": interleaved gaps, `O(log² C)`-sized segments, even
//!   rebalancing, a dynamic side index of segment minima. Scans pay a
//!   branch per slot to skip gaps; rebalances update a swath of index
//!   entries.
//! * `clustered: true` — the "+Clustering" rung: elements packed to
//!   one end of each segment with a `cards` array; gap tests vanish
//!   from scans.
//! * [`SegmentSizing::Fixed`] — the "+Fixed-size segments" rung: the
//!   block-sized segments of the RMA without its static index.
//! * `indexed: false` — the PM14 design point (no index, binary
//!   search over the gapped array itself).
//! * [`RebalanceStrategy::Apma`] — a re-implementation of the
//!   Adaptive PMA's uneven rebalancing (Bender & Hu, TODS 2007),
//!   driven by per-segment hammer counters. As in the RMA paper (its
//!   §V re-implements APMA too, the original code was never
//!   released), this is an approximation of their scoring heuristics;
//!   it exhibits the same ping-pong pathology on sorted sequential
//!   insertions.

mod apma;
mod tpma;

pub use apma::ApmaPredictor;
pub use tpma::{RebalanceStrategy, SegmentSizing, Tpma, TpmaConfig};

/// Key type (8-byte integer), shared across the reproduction.
pub type Key = i64;
/// Value type (8-byte integer), shared across the reproduction.
pub type Value = i64;
