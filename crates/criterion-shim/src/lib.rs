//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace builds in a container without a crates.io registry,
//! so the real criterion cannot be resolved. This shim implements the
//! surface `benches/microbench.rs` uses — groups, `bench_function`,
//! `bench_with_input`, `iter`/`iter_batched`, throughput annotations —
//! measuring medians over a handful of timed runs and printing one
//! plain-text line per benchmark. Statistical machinery (outlier
//! analysis, HTML reports) is intentionally absent.

use std::fmt::Display;
use std::time::Instant;

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            throughput: None,
            sample_size: 5,
        }
    }
}

/// Unit the per-iteration rate is reported in.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// How `iter_batched` amortises setup cost; the shim runs one setup
/// per timed routine call regardless.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher { seconds: 0.0 };
                f(&mut b);
                b.seconds
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = samples[samples.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.3} Melem/s", n as f64 / median.max(1e-12) / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:.3} MiB/s",
                    n as f64 / median.max(1e-12) / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!("  {id:<32} {:>12.6} s/iter{rate}", median);
    }
}

/// Times the closure(s) a benchmark body hands it.
pub struct Bencher {
    seconds: f64,
}

impl Bencher {
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        let start = Instant::now();
        std::hint::black_box(routine());
        self.seconds = start.elapsed().as_secs_f64();
    }

    pub fn iter_batched<I, T>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> T,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        self.seconds = start.elapsed().as_secs_f64();
    }
}

/// Declares the group-runner function the real criterion generates.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
