//! The Rewired Memory Array: public operations, calibrator-tree
//! window search, rebalancing and resizing.

use crate::adaptive::{adaptive_targets, compute_marked_intervals, MarkedInterval};
use crate::config::{RewiringMode, RmaConfig};
use crate::detector::Detector;
use crate::index::StaticIndex;
use crate::stats::RmaStats;
use crate::storage::Storage;
use crate::{Key, Value};

/// A sorted key/value container over a sparse array with fixed-size
/// clustered segments, a static index, rewired rebalances and
/// adaptive rebalancing. See the crate docs for the feature overview.
pub struct Rma {
    pub(crate) cfg: RmaConfig,
    pub(crate) storage: Storage,
    pub(crate) index: StaticIndex,
    pub(crate) detector: Option<Detector>,
    pub(crate) len: usize,
    pub(crate) stats: RmaStats,
    /// Reusable auxiliary buffers for copy-path rebalances.
    pub(crate) scratch_keys: Vec<i64>,
    pub(crate) scratch_vals: Vec<i64>,
}

impl Rma {
    /// Creates an empty RMA.
    pub fn new(cfg: RmaConfig) -> Self {
        cfg.validate();
        let storage = Storage::new(&cfg);
        let index = StaticIndex::build(&[Key::MIN], cfg.index_fanout);
        let detector = cfg.adaptive.map(|d| Detector::new(d, 1));
        Rma {
            cfg,
            storage,
            index,
            detector,
            len: 0,
            stats: RmaStats::default(),
            scratch_keys: Vec::new(),
            scratch_vals: Vec::new(),
        }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot capacity of the underlying sparse array.
    pub fn capacity(&self) -> usize {
        self.storage.capacity()
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.storage.seg_count()
    }

    /// The configuration this RMA was built with.
    pub fn config(&self) -> &RmaConfig {
        &self.cfg
    }

    /// Cumulative operation statistics.
    pub fn stats(&self) -> &RmaStats {
        &self.stats
    }

    /// Whether storage ended up on the mmap (rewirable) backend.
    pub fn backend_kind(&self) -> rewiring::BackendKind {
        self.storage.backend_kind()
    }

    /// Resident bytes: columns + cards + index + detector.
    pub fn memory_footprint(&self) -> usize {
        let det = self
            .detector
            .as_ref()
            .map_or(0, |d| d.num_segments() * (d.config().queue_len * 8 + 48));
        self.storage.memory_footprint() + self.index.memory_footprint() + det
    }

    /// Calibrator tree height for the current segment count.
    pub(crate) fn height(&self) -> usize {
        let m = self.storage.seg_count();
        if m <= 1 {
            1
        } else {
            (usize::BITS - (m - 1).leading_zeros()) as usize + 1
        }
    }

    // ------------------------------------------------------ lookup --
    //
    // Every accessor below takes `&self` and reads only through safe
    // slices: concurrent callers may share an RMA freely as long as no
    // `&mut self` method runs at the same time. The sharded front-end
    // relies on exactly this contract for its optimistic (seqlock)
    // read path — readers run these methods lock-free while writers
    // are fenced out, so nothing here may cache state or mutate
    // through interior mutability.

    /// Returns a value stored under `k`, if any.
    pub fn get(&self, k: Key) -> Option<Value> {
        let seg = self.index.search(k);
        let pos = self.storage.seg_lower_bound(seg, k);
        let keys = self.storage.seg_keys(seg);
        (pos < keys.len() && keys[pos] == k).then(|| self.storage.seg_vals(seg)[pos])
    }

    /// First element with key `>= k` in sorted order.
    pub fn first_ge(&self, k: Key) -> Option<(Key, Value)> {
        let (seg, pos) = self.locate_lower_bound(k)?;
        Some((
            self.storage.seg_keys(seg)[pos],
            self.storage.seg_vals(seg)[pos],
        ))
    }

    fn locate_lower_bound(&self, k: Key) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        // Leftmost-biased routing: `search` routes equal keys right
        // (correct for exact match), but a lower-bound must start at
        // the first segment that can hold an element >= k, or
        // duplicate runs spanning segments would be skipped.
        let mut seg = self.index.search_lower_bound(k);
        let pos = self.storage.seg_lower_bound(seg, k);
        if pos < self.storage.card(seg) {
            return Some((seg, pos));
        }
        // Walk right to the next non-empty segment.
        seg += 1;
        while seg < self.storage.seg_count() {
            if self.storage.card(seg) > 0 {
                return Some((seg, 0));
            }
            seg += 1;
        }
        None
    }

    // -------------------------------------------------------- scan --

    /// Visits up to `count` elements in key order starting from the
    /// first element `>= start`; returns the number visited. Thanks to
    /// clustering, the inner loops run over dense slices with no
    /// per-slot gap tests.
    pub fn scan<F: FnMut(Key, Value)>(&self, start: Key, count: usize, mut f: F) -> usize {
        let Some((mut seg, mut pos)) = self.locate_lower_bound(start) else {
            return 0;
        };
        let mut visited = 0usize;
        while visited < count && seg < self.storage.seg_count() {
            let keys = self.storage.seg_keys(seg);
            let vals = self.storage.seg_vals(seg);
            let take = (keys.len() - pos).min(count - visited);
            for i in pos..pos + take {
                f(keys[i], vals[i]);
            }
            visited += take;
            seg += 1;
            pos = 0;
        }
        visited
    }

    /// Sums up to `count` values starting at the first key `>= start`
    /// — the scan kernel of Fig. 1, 10c and 12b.
    pub fn sum_range(&self, start: Key, count: usize) -> (usize, i64) {
        let Some((mut seg, mut pos)) = self.locate_lower_bound(start) else {
            return (0, 0);
        };
        let mut visited = 0usize;
        let mut sum = 0i64;
        while visited < count && seg < self.storage.seg_count() {
            let vals = self.storage.seg_vals(seg);
            let take = (vals.len() - pos).min(count - visited);
            for &v in &vals[pos..pos + take] {
                sum = sum.wrapping_add(v);
            }
            visited += take;
            seg += 1;
            pos = 0;
        }
        (visited, sum)
    }

    /// Iterates over all elements in key order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, Value)> + '_ {
        (0..self.storage.seg_count()).flat_map(move |seg| {
            let keys = self.storage.seg_keys(seg);
            let vals = self.storage.seg_vals(seg);
            keys.iter().copied().zip(vals.iter().copied())
        })
    }

    /// Appends every element in key order to `out`, reserving once up
    /// front — the allocation-friendly drain used by shard
    /// maintenance when it rebuilds topologies.
    pub fn collect_into(&self, out: &mut Vec<(Key, Value)>) {
        out.reserve(self.len);
        for seg in 0..self.storage.seg_count() {
            let keys = self.storage.seg_keys(seg);
            let vals = self.storage.seg_vals(seg);
            out.extend(keys.iter().copied().zip(vals.iter().copied()));
        }
    }

    // ------------------------------------------------------ insert --

    /// Inserts `(k, v)`; duplicates are kept. Amortised
    /// `O(log²N / B)` slot moves per insertion.
    pub fn insert(&mut self, k: Key, v: Value) {
        let mut seg = self.index.search(k);
        if self.storage.card(seg) == self.cfg.segment_size {
            // τ₁ = 1: the segment filled completely; rebalance now.
            self.rebalance_for_insert(seg);
            seg = self.index.search(k);
            debug_assert!(self.storage.card(seg) < self.cfg.segment_size);
        }
        let pos = self.storage.insert_into_segment(seg, k, v);
        if pos == 0 {
            self.index.update(seg, k);
        }
        if self.detector.is_some() {
            let (pred, succ) = self.neighbours(seg, pos);
            if let Some(det) = &mut self.detector {
                det.on_insert(seg, k, pred, succ);
            }
        }
        self.len += 1;
    }

    /// Array neighbours of the element at `(seg, pos)`, looking at
    /// most two segments away (Detector metadata tolerates misses).
    fn neighbours(&self, seg: usize, pos: usize) -> (Option<Key>, Option<Key>) {
        let keys = self.storage.seg_keys(seg);
        let pred = if pos > 0 {
            Some(keys[pos - 1])
        } else {
            (seg.saturating_sub(2)..seg)
                .rev()
                .find(|&s| self.storage.card(s) > 0)
                .map(|s| *self.storage.seg_keys(s).last().expect("non-empty"))
        };
        let succ = if pos + 1 < keys.len() {
            Some(keys[pos + 1])
        } else {
            (seg + 1..(seg + 3).min(self.storage.seg_count()))
                .find(|&s| self.storage.card(s) > 0)
                .map(|s| self.storage.seg_keys(s)[0])
        };
        (pred, succ)
    }

    // ------------------------------------------------------ delete --

    /// Removes one element with key exactly `k`, returning its value.
    pub fn remove(&mut self, k: Key) -> Option<Value> {
        if self.len == 0 {
            return None;
        }
        let seg = self.index.search(k);
        let pos = self.storage.seg_lower_bound(seg, k);
        let keys = self.storage.seg_keys(seg);
        if pos >= keys.len() || keys[pos] != k {
            return None;
        }
        Some(self.remove_at(seg, pos).1)
    }

    /// Removes the first element with key `>= k`, or the maximum when
    /// every key is smaller (the mixed-workload delete operator).
    /// Returns `None` only on an empty array.
    pub fn remove_successor(&mut self, k: Key) -> Option<(Key, Value)> {
        if self.len == 0 {
            return None;
        }
        if let Some((seg, pos)) = self.locate_lower_bound(k) {
            return Some(self.remove_at(seg, pos));
        }
        // Remove the global maximum.
        let seg = (0..self.storage.seg_count())
            .rev()
            .find(|&s| self.storage.card(s) > 0)
            .expect("non-empty array");
        let pos = self.storage.card(seg) - 1;
        Some(self.remove_at(seg, pos))
    }

    fn remove_at(&mut self, seg: usize, pos: usize) -> (Key, Value) {
        let out = self.storage.remove_from_segment(seg, pos);
        if pos == 0 && self.storage.card(seg) > 0 {
            let new_min = self.storage.seg_min(seg);
            self.index.update(seg, new_min);
        }
        if let Some(det) = &mut self.detector {
            det.on_delete(seg);
        }
        self.len -= 1;
        self.after_delete(seg);
        out
    }

    // ------------------------------------ calibrator-tree triggers --

    /// Finds and rebalances the smallest enclosing window whose upper
    /// density threshold tolerates the overflowing segment, growing
    /// the array if even the root violates it.
    fn rebalance_for_insert(&mut self, seg: usize) {
        let m = self.storage.seg_count();
        let height = self.height();
        let b = self.cfg.segment_size;
        // Hammer-escalation rule: when the Detector says this segment
        // is being hammered, a rebalance is only worthwhile if the
        // window has enough slack to leave real gaps at the hot spot —
        // otherwise the very next insertions re-trigger it. Demanding
        // half a segment of headroom makes hammered triggers escalate
        // to windows that amortise (the effect adaptive rebalancing is
        // for, §IV).
        let hammered = self
            .detector
            .as_ref()
            .is_some_and(|d| d.segment(seg).sc.unsigned_abs() >= d.config().theta_sc as u16);
        let headroom = if hammered { b / 2 } else { 0 };
        let mut w = 2usize;
        let mut level = 2usize;
        while level <= height {
            let start = (seg / w) * w;
            let end = (start + w).min(m);
            let cap = (end - start) * b;
            let cards: usize = (start..end).map(|s| self.storage.card(s)).sum();
            // Progress guard on top of the density test: the window
            // must be able to leave every segment with a free slot.
            if cards <= self.cfg.thresholds.max_card(level, height, cap)
                && cards + headroom <= (end - start) * (b - 1)
            {
                self.rebalance_window(start..end);
                return;
            }
            w *= 2;
            level += 1;
        }
        self.resize_grow();
    }

    /// After a deletion from `seg`: rebalance the smallest window
    /// satisfying its lower threshold, shrink when even the root
    /// cannot, and enforce the scan-oriented 50% fill rule.
    fn after_delete(&mut self, seg: usize) {
        let m = self.storage.seg_count();
        // Scan-oriented extra rule: fill factor below 50% forces a
        // resize regardless of the per-window thresholds.
        if self.cfg.thresholds.policy == crate::thresholds::ResizePolicy::Proportional {
            if m > 1 && self.len * 2 < self.capacity() {
                self.resize_shrink();
            }
            return;
        }
        let height = self.height();
        let b = self.cfg.segment_size;
        let min_seg = self.cfg.thresholds.min_card(1, height, b);
        if self.storage.card(seg) >= min_seg {
            return;
        }
        let mut w = 2usize;
        let mut level = 2usize;
        while level <= height {
            let start = (seg / w) * w;
            let end = (start + w).min(m);
            let cap = (end - start) * b;
            let cards: usize = (start..end).map(|s| self.storage.card(s)).sum();
            if cards >= self.cfg.thresholds.min_card(level, height, cap) {
                self.rebalance_window(start..end);
                return;
            }
            w *= 2;
            level += 1;
        }
        if m > 1 {
            self.resize_shrink();
        }
    }

    // -------------------------------------------------- rebalances --

    /// Redistributes the elements of `segs` according to the adaptive
    /// algorithm (if enabled and hammering was detected) or an even
    /// spread, then refreshes the affected separators.
    fn rebalance_window(&mut self, segs: std::ops::Range<usize>) {
        let m = segs.len();
        let b = self.cfg.segment_size;
        let total: usize = segs.clone().map(|s| self.storage.card(s)).sum();
        let mut intervals: Vec<MarkedInterval> = match &self.detector {
            Some(det) => compute_marked_intervals(det, &self.storage, segs.clone()),
            None => Vec::new(),
        };
        // Conflicting predictions (insert-hot and delete-hot intervals
        // in the same window, as in the mixed workload's alternating
        // phases) carry no usable position signal: honouring one side
        // starves the other and the window thrashes. Fall back to the
        // even spread, which §IV's scoring would also converge to.
        if intervals.iter().any(|i| i.score > 0) && intervals.iter().any(|i| i.score < 0) {
            intervals.clear();
        }
        let mut targets = if intervals.is_empty() {
            even_targets(total, m)
        } else {
            self.stats.adaptive_rebalances += 1;
            adaptive_targets(b, m, total, &intervals, &self.cfg.thresholds, self.height())
        };
        // Progress guarantee: no segment may end up completely full,
        // or the very next insert would re-trigger the same rebalance.
        cap_targets(&mut targets, b, total);
        self.stats.rebalances += 1;
        self.redistribute(segs.clone(), &targets);
        self.refresh_separators(segs);
    }

    /// Physically moves the window's elements into the target layout,
    /// through page rewiring when the window is page-aligned, and the
    /// auxiliary-buffer copy path otherwise.
    fn redistribute(&mut self, segs: std::ops::Range<usize>, targets: &[usize]) {
        let b = self.cfg.segment_size;
        let first_slot = segs.start * b;
        let slots = segs.len() * b;
        self.stats.elements_moved += targets.iter().sum::<usize>() as u64;

        // Source ranges (absolute), captured before mutation.
        let src_ranges: Vec<std::ops::Range<usize>> =
            segs.clone().map(|s| self.storage.seg_range(s)).collect();
        // Destination ranges relative to the window start.
        let dst_ranges = window_layout(segs.start, b, targets);

        let epp = self.storage.keys.elems_per_page();
        let rewire = matches!(self.cfg.rewiring, RewiringMode::Enabled { .. })
            && first_slot.is_multiple_of(epp)
            && slots.is_multiple_of(epp)
            && slots >= epp;
        if rewire {
            self.stats.rewired_commits += 1;
            for col in [Column::Keys, Column::Vals] {
                let vec = match col {
                    Column::Keys => &mut self.storage.keys,
                    Column::Vals => &mut self.storage.vals,
                };
                let (arr, buf) = vec.array_and_buffer_mut(slots);
                // Flat gather-scatter: walk sources in order, fill
                // destinations in order — one copy per element.
                let mut src_iter = src_ranges.iter().flat_map(|r| r.clone());
                for dst in &dst_ranges {
                    for slot in dst.clone() {
                        let s = src_iter.next().expect("targets sum to window total");
                        buf[slot] = arr[s];
                    }
                }
                vec.commit_window_swap(first_slot, slots);
            }
        } else {
            self.stats.copied_commits += 1;
            // Copy path: gather into scratch (first copy), scatter
            // back (second copy) — the paper's two-pass scheme.
            self.scratch_keys.clear();
            self.scratch_vals.clear();
            for r in &src_ranges {
                self.scratch_keys
                    .extend_from_slice(&self.storage.keys.as_slice()[r.clone()]);
                self.scratch_vals
                    .extend_from_slice(&self.storage.vals.as_slice()[r.clone()]);
            }
            let mut cursor = 0usize;
            for dst in &dst_ranges {
                let n = dst.len();
                let keys = self.storage.keys.as_mut_slice();
                keys[first_slot + dst.start..first_slot + dst.end]
                    .copy_from_slice(&self.scratch_keys[cursor..cursor + n]);
                let vals = self.storage.vals.as_mut_slice();
                vals[first_slot + dst.start..first_slot + dst.end]
                    .copy_from_slice(&self.scratch_vals[cursor..cursor + n]);
                cursor += n;
            }
        }
        for (i, s) in segs.enumerate() {
            self.storage.cards[s] = targets[i] as u32;
        }
    }

    /// Recomputes the separators of a window after a rebalance: a
    /// non-empty segment's separator is its minimum; an empty one
    /// inherits the next non-empty minimum (or one past the window
    /// maximum for a trailing run), keeping separators monotone.
    pub(crate) fn refresh_separators(&mut self, segs: std::ops::Range<usize>) {
        let window_max: Option<Key> = segs
            .clone()
            .rev()
            .find(|&s| self.storage.card(s) > 0)
            .map(|s| *self.storage.seg_keys(s).last().expect("non-empty"));
        let Some(window_max) = window_max else {
            return; // fully empty window: previous separators still bound it
        };
        let mut next_sep = window_max.saturating_add(1);
        for s in segs.rev() {
            if self.storage.card(s) > 0 {
                next_sep = self.storage.seg_min(s);
            }
            if s > 0 {
                self.index.update(s, next_sep);
            }
        }
    }

    // ------------------------------------------------------ resize --

    fn grow_target_segments(&self) -> usize {
        let b = self.cfg.segment_size;
        match self.cfg.thresholds.policy {
            crate::thresholds::ResizePolicy::Double => self.storage.seg_count() * 2,
            crate::thresholds::ResizePolicy::Proportional => {
                let denom = self.cfg.thresholds.tau_h + self.cfg.thresholds.rho_h;
                let slots = (2.0 * self.len as f64 / denom).ceil() as usize;
                slots.div_ceil(b).max(self.storage.seg_count() + 1)
            }
        }
    }

    fn shrink_target_segments(&self) -> usize {
        let b = self.cfg.segment_size;
        match self.cfg.thresholds.policy {
            crate::thresholds::ResizePolicy::Double => (self.storage.seg_count() / 2).max(1),
            crate::thresholds::ResizePolicy::Proportional => {
                let denom = self.cfg.thresholds.tau_h + self.cfg.thresholds.rho_h;
                let slots = (2.0 * self.len as f64 / denom).ceil() as usize;
                slots
                    .div_ceil(b)
                    .clamp(1, self.storage.seg_count().saturating_sub(1).max(1))
            }
        }
    }

    fn resize_grow(&mut self) {
        self.stats.grows += 1;
        let new_segs = self.grow_target_segments();
        self.resize_to(new_segs);
    }

    fn resize_shrink(&mut self) {
        self.stats.shrinks += 1;
        let new_segs = self.shrink_target_segments();
        if new_segs >= self.storage.seg_count() {
            return;
        }
        self.resize_to(new_segs);
    }

    /// Rebuilds the array at `new_segs` segments with an even spread,
    /// swapping pages in via rewiring when enabled (one copy per
    /// element) or writing into fresh storage otherwise.
    pub(crate) fn resize_to(&mut self, new_segs: usize) {
        let b = self.cfg.segment_size;
        let old_segs = self.storage.seg_count();
        debug_assert!(self.len <= new_segs * b, "resize target too small");
        let mut targets = even_targets(self.len, new_segs);
        cap_targets(&mut targets, b, self.len);
        self.stats.elements_moved += self.len as u64;

        let src_ranges: Vec<std::ops::Range<usize>> =
            (0..old_segs).map(|s| self.storage.seg_range(s)).collect();
        let dst_ranges = window_layout(0, b, &targets);
        let new_slots = new_segs * b;

        if matches!(self.cfg.rewiring, RewiringMode::Enabled { .. }) {
            self.stats.rewired_commits += 1;
            for col in [Column::Keys, Column::Vals] {
                let vec = match col {
                    Column::Keys => &mut self.storage.keys,
                    Column::Vals => &mut self.storage.vals,
                };
                let (arr, buf) = vec.array_and_buffer_mut(new_slots);
                let mut src_iter = src_ranges.iter().flat_map(|r| r.clone());
                for dst in &dst_ranges {
                    for slot in dst.clone() {
                        let s = src_iter.next().expect("len matches targets");
                        buf[slot] = arr[s];
                    }
                }
                vec.commit_resize_swap(new_slots);
            }
        } else {
            self.stats.copied_commits += 1;
            // Standard resize: fresh storage, one copy per element
            // (plus the OS-level page zeroing the paper highlights).
            let mut new_storage = Storage::new(&self.cfg);
            new_storage.keys.resize_in_place(new_slots);
            new_storage.vals.resize_in_place(new_slots);
            new_storage.cards = vec![0; new_segs];
            {
                let old_keys = self.storage.keys.as_slice();
                let old_vals = self.storage.vals.as_slice();
                let nk = new_storage.keys.as_mut_slice();
                let mut src_iter = src_ranges.iter().flat_map(|r| r.clone());
                for dst in &dst_ranges {
                    for slot in dst.clone() {
                        let s = src_iter.next().expect("len matches targets");
                        nk[slot] = old_keys[s];
                    }
                }
                let nv = new_storage.vals.as_mut_slice();
                let mut src_iter = src_ranges.iter().flat_map(|r| r.clone());
                for dst in &dst_ranges {
                    for slot in dst.clone() {
                        let s = src_iter.next().expect("len matches targets");
                        nv[slot] = old_vals[s];
                    }
                }
            }
            self.storage = new_storage;
        }
        self.storage.cards.resize(new_segs, 0);
        for (s, t) in targets.iter().enumerate() {
            self.storage.cards[s] = *t as u32;
        }
        // The index is static: a resize rebuilds it from scratch.
        self.rebuild_index();
        if let Some(det) = &mut self.detector {
            det.reset(new_segs);
        }
    }

    fn rebuild_index(&mut self) {
        let m = self.storage.seg_count();
        let mut minima = vec![Key::MIN; m];
        let mut next_sep = self
            .iter_last_key()
            .map_or(Key::MIN, |k| k.saturating_add(1));
        for (s, slot) in minima.iter_mut().enumerate().rev() {
            if self.storage.card(s) > 0 {
                next_sep = self.storage.seg_min(s);
            }
            *slot = next_sep;
        }
        self.index = StaticIndex::build(&minima, self.cfg.index_fanout);
    }

    fn iter_last_key(&self) -> Option<Key> {
        (0..self.storage.seg_count())
            .rev()
            .find(|&s| self.storage.card(s) > 0)
            .map(|s| *self.storage.seg_keys(s).last().expect("non-empty"))
    }

    // -------------------------------------------------- validation --

    /// Exhaustive structural check; test helper.
    pub fn check_invariants(&self) {
        self.storage.check_invariants();
        assert_eq!(self.storage.total_cards(), self.len, "len mismatch");
        // Separator invariants: monotone; equal to the minimum for
        // non-empty segments; routing-consistent for empty ones.
        let mut prev_sep = Key::MIN;
        let mut prev_max = Key::MIN;
        for s in 0..self.storage.seg_count() {
            if let Some(sep) = self.index.separator(s) {
                assert!(sep >= prev_sep, "separators not monotone at {s}");
                assert!(
                    sep >= prev_max,
                    "separator at {s} below the keys to its left"
                );
                if self.storage.card(s) > 0 {
                    assert_eq!(sep, self.storage.seg_min(s), "separator != min at {s}");
                }
                prev_sep = sep;
            }
            if self.storage.card(s) > 0 {
                prev_max = *self.storage.seg_keys(s).last().expect("non-empty");
            }
        }
    }
}

enum Column {
    Keys,
    Vals,
}

/// Even spread: `total` elements over `m` segments, remainder to the
/// leftmost segments (the TPMA policy).
pub(crate) fn even_targets(total: usize, m: usize) -> Vec<usize> {
    let base = total / m;
    let rem = total % m;
    (0..m).map(|i| base + usize::from(i < rem)).collect()
}

/// Caps every target at `B − 1` so no segment leaves a rebalance
/// already full; donates the excess to the least-filled segments.
pub(crate) fn cap_targets(targets: &mut [usize], b: usize, total: usize) {
    let m = targets.len();
    if m <= 1 || total > m * (b - 1) {
        return; // single segment may legitimately be full
    }
    for i in 0..m {
        while targets[i] >= b {
            let j = (0..m)
                .min_by_key(|&j| targets[j])
                .expect("non-empty targets");
            targets[i] -= 1;
            targets[j] += 1;
        }
    }
}

/// Occupied slot ranges (window-relative) for the clustered layout of
/// segments starting at global index `seg0` with the given targets.
pub(crate) fn window_layout(
    seg0: usize,
    b: usize,
    targets: &[usize],
) -> Vec<std::ops::Range<usize>> {
    targets
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let base = i * b;
            if Storage::packs_right(seg0 + i) {
                base + b - t..base + b
            } else {
                base..base + t
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thresholds::Thresholds;

    fn small_cfg() -> RmaConfig {
        RmaConfig {
            segment_size: 8,
            rewiring: RewiringMode::Disabled,
            adaptive: None,
            reserve_bytes: 1 << 26,
            ..Default::default()
        }
    }

    #[test]
    fn insert_and_get_small() {
        let mut r = Rma::new(small_cfg());
        for k in [5i64, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
            r.insert(k, k * 10);
        }
        r.check_invariants();
        for k in 0..10 {
            assert_eq!(r.get(k), Some(k * 10), "get {k}");
        }
        assert_eq!(r.get(42), None);
    }

    #[test]
    fn grows_through_many_resizes() {
        let mut r = Rma::new(small_cfg());
        for k in 0..10_000i64 {
            r.insert((k * 2654435761) % 100_000, k);
        }
        r.check_invariants();
        assert_eq!(r.len(), 10_000);
        assert!(r.stats().grows >= 5, "expected several resizes");
        let collected: Vec<i64> = r.iter().map(|(k, _)| k).collect();
        assert!(collected.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(collected.len(), 10_000);
    }

    #[test]
    fn sequential_inserts() {
        let mut r = Rma::new(small_cfg());
        for k in 0..5000i64 {
            r.insert(k, k);
        }
        r.check_invariants();
        for k in (0..5000).step_by(97) {
            assert_eq!(r.get(k), Some(k));
        }
    }

    #[test]
    fn reverse_sequential_inserts() {
        let mut r = Rma::new(small_cfg());
        for k in (0..5000i64).rev() {
            r.insert(k, -k);
        }
        r.check_invariants();
        assert_eq!(r.get(0), Some(0));
        assert_eq!(r.get(4999), Some(-4999));
    }

    #[test]
    fn duplicates_everywhere() {
        let mut r = Rma::new(small_cfg());
        for i in 0..1000 {
            r.insert(7, i);
        }
        for i in 0..500 {
            r.insert(3, i);
            r.insert(11, i);
        }
        r.check_invariants();
        assert_eq!(r.len(), 2000);
        assert!(r.get(7).is_some());
        assert_eq!(r.iter().filter(|&(k, _)| k == 7).count(), 1000);
    }

    #[test]
    fn remove_exact() {
        let mut r = Rma::new(small_cfg());
        for k in 0..2000i64 {
            r.insert(k, k);
        }
        for k in (0..2000).step_by(2) {
            assert_eq!(r.remove(k), Some(k), "remove {k}");
        }
        r.check_invariants();
        assert_eq!(r.len(), 1000);
        for k in 0..2000 {
            assert_eq!(r.get(k).is_some(), k % 2 == 1);
        }
        assert!(r.stats().shrinks + r.stats().rebalances > 0);
    }

    #[test]
    fn remove_to_empty_and_reuse() {
        let mut r = Rma::new(small_cfg());
        for k in 0..500i64 {
            r.insert(k, k);
        }
        for k in 0..500i64 {
            assert_eq!(r.remove(k), Some(k));
        }
        assert!(r.is_empty());
        r.check_invariants();
        r.insert(1, 1);
        assert_eq!(r.get(1), Some(1));
    }

    #[test]
    fn remove_successor_semantics() {
        let mut r = Rma::new(small_cfg());
        for k in [10i64, 20, 30] {
            r.insert(k, k);
        }
        assert_eq!(r.remove_successor(15), Some((20, 20)));
        assert_eq!(r.remove_successor(100), Some((30, 30)));
        assert_eq!(r.remove_successor(0), Some((10, 10)));
        assert_eq!(r.remove_successor(0), None);
    }

    #[test]
    fn scan_sums_and_order() {
        let mut r = Rma::new(small_cfg());
        for k in 0..3000i64 {
            r.insert(k, 1);
        }
        let (n, sum) = r.sum_range(100, 500);
        assert_eq!((n, sum), (500, 500));
        let mut seen = Vec::new();
        r.scan(2990, 100, |k, _| seen.push(k));
        assert_eq!(seen, (2990..3000).collect::<Vec<i64>>());
        assert_eq!(r.sum_range(99999, 5).0, 0);
    }

    #[test]
    fn first_ge_crosses_segments() {
        let mut r = Rma::new(small_cfg());
        for k in (0..1000).step_by(10) {
            r.insert(k, k);
        }
        assert_eq!(r.first_ge(-5), Some((0, 0)));
        assert_eq!(r.first_ge(15), Some((20, 20)));
        assert_eq!(r.first_ge(990), Some((990, 990)));
        assert_eq!(r.first_ge(991), None);
    }

    #[test]
    fn adaptive_mode_stays_consistent() {
        let cfg = RmaConfig {
            segment_size: 8,
            rewiring: RewiringMode::Disabled,
            reserve_bytes: 1 << 26,
            ..Default::default()
        };
        assert!(cfg.adaptive.is_some());
        let mut r = Rma::new(cfg);
        for k in 0..20_000i64 {
            r.insert(k, k); // sequential hammering
        }
        r.check_invariants();
        assert_eq!(r.len(), 20_000);
        for k in (0..20_000).step_by(371) {
            assert_eq!(r.get(k), Some(k));
        }
    }

    #[test]
    fn rewired_mode_matches_copy_mode() {
        let mk = |rewired: bool| {
            let cfg = RmaConfig {
                segment_size: 16,
                rewiring: if rewired {
                    RewiringMode::Enabled { page_bytes: 4096 }
                } else {
                    RewiringMode::Disabled
                },
                adaptive: None,
                reserve_bytes: 1 << 26,
                ..Default::default()
            };
            let mut r = Rma::new(cfg);
            for k in 0..30_000i64 {
                r.insert((k * 48271) % 65_536, k);
            }
            r.iter().collect::<Vec<_>>()
        };
        let a = mk(true);
        let b = mk(false);
        assert_eq!(a.len(), 30_000);
        assert_eq!(
            a, b,
            "rewired and copy paths must produce identical content"
        );
    }

    #[test]
    fn scan_oriented_thresholds_work() {
        let cfg = RmaConfig {
            segment_size: 8,
            rewiring: RewiringMode::Disabled,
            adaptive: None,
            thresholds: Thresholds::scan_oriented(),
            reserve_bytes: 1 << 26,
            ..Default::default()
        };
        let mut r = Rma::new(cfg);
        for k in 0..10_000i64 {
            r.insert((k * 7919) % 50_000, k);
        }
        r.check_invariants();
        // ST keeps the array dense: fill factor near 75%.
        let fill = r.len() as f64 / r.capacity() as f64;
        assert!(fill > 0.55, "ST fill factor too low: {fill}");
        // Delete most elements: the 50% rule must kick in.
        for _ in 0..9_000 {
            r.remove_successor(0);
        }
        r.check_invariants();
        let fill = r.len() as f64 / r.capacity() as f64;
        assert!(fill >= 0.45, "ST shrink rule failed: fill {fill}");
        assert!(r.stats().shrinks > 0);
    }

    #[test]
    fn mixed_churn_against_btreemap() {
        use std::collections::BTreeMap;
        let mut r = Rma::new(small_cfg());
        let mut oracle: BTreeMap<i64, usize> = BTreeMap::new();
        let mut x = 99u64;
        for step in 0..30_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = ((x >> 52) & 0x7FF) as i64;
            if step % 3 == 2 {
                let want = oracle
                    .range(k..)
                    .next()
                    .map(|(&kk, _)| kk)
                    .or_else(|| oracle.keys().next_back().copied());
                let got = r.remove_successor(k).map(|(kk, _)| kk);
                assert_eq!(got, want, "step {step} delete_succ {k}");
                if let Some(kk) = want {
                    let c = oracle.get_mut(&kk).expect("oracle has key");
                    *c -= 1;
                    if *c == 0 {
                        oracle.remove(&kk);
                    }
                }
            } else {
                r.insert(k, step as i64);
                *oracle.entry(k).or_insert(0) += 1;
            }
            let total: usize = oracle.values().sum();
            assert_eq!(r.len(), total, "step {step}");
        }
        r.check_invariants();
    }

    #[test]
    fn cap_targets_prevents_full_segments() {
        let mut t = vec![8, 0, 8, 0];
        cap_targets(&mut t, 8, 16);
        assert_eq!(t.iter().sum::<usize>(), 16);
        assert!(t.iter().all(|&x| x < 8), "{t:?}");
    }

    #[test]
    fn even_targets_distributes_remainder() {
        assert_eq!(even_targets(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(even_targets(0, 3), vec![0, 0, 0]);
    }

    #[test]
    fn footprint_reports_resident_bytes() {
        let mut r = Rma::new(small_cfg());
        let empty = r.memory_footprint();
        for k in 0..100_000i64 {
            r.insert(k, k);
        }
        assert!(r.memory_footprint() > empty * 10);
    }
}
