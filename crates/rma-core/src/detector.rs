//! The Detector (§IV, Fig. 8, Algorithm 1): per-segment metadata that
//! identifies hammered intervals for adaptive rebalancing.
//!
//! Each segment carries:
//! * a fixed-length queue `Q` of the timestamps of its most recent
//!   updates (a discrete global counter in this implementation);
//! * two predicted keys `k_bwd` / `k_fwd` with saturating counters: on
//!   every insertion of key `k`, if the successor of `k` matches
//!   `k_bwd` (a backward-sequential pattern, e.g. 16, 15, 14, …) its
//!   counter increments, if the predecessor matches `k_fwd` (forward
//!   pattern) that counter increments, otherwise both decay; a counter
//!   hitting zero re-targets its key;
//! * a score counter `sc`, incremented per insertion and decremented
//!   per deletion, that decides whether a marked interval predicts
//!   inserts (+1) or deletes (−1).

use crate::Key;

/// Tuning parameters of the Detector and the preprocessing phase.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Length of the per-segment timestamp queue.
    pub queue_len: usize,
    /// Saturation bound `SC` for the pattern counters and `|sc|`.
    pub sc_max: u8,
    /// Pattern-counter threshold `θ_SC`: at or above it, a marked
    /// interval shrinks to the predicted 2-element range.
    pub theta_sc: u8,
    /// A segment is marked when at least this fraction of its queued
    /// timestamps exceeds the recency cutoff.
    pub mark_fraction: f64,
    /// The recency cutoff is the timestamp ranked `top_multiplier ×
    /// queue_len` from the top across the window being rebalanced.
    ///
    /// The paper uses the 99.9th percentile at 2^30-element scale; a
    /// rank-based cutoff expresses the same intent ("only the most
    /// recently hammered segments") in a way that is robust at the
    /// scaled-down window sizes of this reproduction (see DESIGN.md).
    pub top_multiplier: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            queue_len: 8,
            sc_max: 7,
            theta_sc: 2,
            mark_fraction: 0.75,
            top_multiplier: 2.0,
        }
    }
}

/// One pattern predictor: a key and its saturating counter.
#[derive(Debug, Clone, Copy, Default)]
pub struct Predictor {
    /// The predicted boundary key.
    pub value: Key,
    /// Confidence counter in `[0, SC]`.
    pub counter: u8,
}

/// Per-segment metadata (Fig. 8).
#[derive(Debug, Clone)]
pub struct SegmentMeta {
    /// Ring buffer of recent update timestamps.
    timestamps: Box<[u64]>,
    head: usize,
    filled: usize,
    /// Backward-sequential predictor (`k_bwd`).
    pub kbwd: Predictor,
    /// Forward-sequential predictor (`k_fwd`).
    pub kfwd: Predictor,
    /// Insert/delete balance in `[-SC, +SC]`.
    pub sc: i16,
}

impl SegmentMeta {
    fn new(queue_len: usize) -> Self {
        SegmentMeta {
            timestamps: vec![0; queue_len].into_boxed_slice(),
            head: 0,
            filled: 0,
            kbwd: Predictor::default(),
            kfwd: Predictor::default(),
            sc: 0,
        }
    }

    fn record_timestamp(&mut self, ts: u64) {
        self.timestamps[self.head] = ts;
        self.head = (self.head + 1) % self.timestamps.len();
        self.filled = (self.filled + 1).min(self.timestamps.len());
    }

    /// The recorded timestamps (unordered).
    pub fn timestamps(&self) -> &[u64] {
        &self.timestamps[..self.filled]
    }
}

/// The Detector: one [`SegmentMeta`] per segment plus the global
/// operation clock.
#[derive(Debug)]
pub struct Detector {
    cfg: DetectorConfig,
    segments: Vec<SegmentMeta>,
    clock: u64,
}

impl Detector {
    /// A detector for `num_segments` segments.
    pub fn new(cfg: DetectorConfig, num_segments: usize) -> Self {
        Detector {
            cfg,
            segments: (0..num_segments)
                .map(|_| SegmentMeta::new(cfg.queue_len))
                .collect(),
            clock: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Metadata of segment `seg`.
    pub fn segment(&self, seg: usize) -> &SegmentMeta {
        &self.segments[seg]
    }

    /// Number of tracked segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Re-dimensions the detector after a resize; all metadata resets
    /// (the paper rebuilds index-adjacent state at resizes too).
    pub fn reset(&mut self, num_segments: usize) {
        self.segments = (0..num_segments)
            .map(|_| SegmentMeta::new(self.cfg.queue_len))
            .collect();
    }

    /// Algorithm 1: updates segment `seg` after inserting key `k`
    /// whose in-array neighbours are `pred` and `succ` (`None` at the
    /// array boundaries).
    pub fn on_insert(&mut self, seg: usize, _k: Key, pred: Option<Key>, succ: Option<Key>) {
        self.clock += 1;
        let sc_max = self.cfg.sc_max;
        let meta = &mut self.segments[seg];
        meta.record_timestamp(self.clock);
        meta.sc = (meta.sc + 1).min(sc_max as i16);

        let bwd_hit = succ.is_some_and(|s| s == meta.kbwd.value && meta.kbwd.counter > 0);
        let fwd_hit = pred.is_some_and(|p| p == meta.kfwd.value && meta.kfwd.counter > 0);
        if bwd_hit {
            meta.kbwd.counter = (meta.kbwd.counter + 1).min(sc_max);
        } else if fwd_hit {
            meta.kfwd.counter = (meta.kfwd.counter + 1).min(sc_max);
        } else {
            meta.kbwd.counter = meta.kbwd.counter.saturating_sub(1);
            meta.kfwd.counter = meta.kfwd.counter.saturating_sub(1);
            if meta.kbwd.counter == 0 {
                if let Some(s) = succ {
                    meta.kbwd.value = s;
                    meta.kbwd.counter = 1;
                }
            }
            if meta.kfwd.counter == 0 {
                if let Some(p) = pred {
                    meta.kfwd.value = p;
                    meta.kfwd.counter = 1;
                }
            }
        }
    }

    /// Deletion bookkeeping (§IV "Deletions"): timestamps record the
    /// update; `sc` decays towards the deletion side.
    pub fn on_delete(&mut self, seg: usize) {
        self.clock += 1;
        let sc_max = self.cfg.sc_max as i16;
        let meta = &mut self.segments[seg];
        meta.record_timestamp(self.clock);
        meta.sc = (meta.sc - 1).max(-sc_max);
    }

    /// The recency cutoff for a window: the timestamp ranked
    /// `top_multiplier × queue_len` from the top among all timestamps
    /// recorded by `segs`, or `None` when the window has no recorded
    /// activity.
    pub fn recency_cutoff(&self, segs: std::ops::Range<usize>) -> Option<u64> {
        let mut all: Vec<u64> = Vec::with_capacity(segs.len() * self.cfg.queue_len);
        for s in segs {
            all.extend_from_slice(self.segments[s].timestamps());
        }
        if all.is_empty() {
            return None;
        }
        all.sort_unstable();
        let top = ((self.cfg.top_multiplier * self.cfg.queue_len as f64).round() as usize).max(1);
        let idx = all.len().saturating_sub(top);
        Some(all[idx])
    }

    /// True if segment `seg` passes the recency mark rule: at least
    /// `mark_fraction` of its queued timestamps exceed `cutoff`.
    pub fn is_recent(&self, seg: usize, cutoff: u64) -> bool {
        let meta = &self.segments[seg];
        if meta.filled == 0 {
            return false;
        }
        let above = meta.timestamps().iter().filter(|&&t| t > cutoff).count();
        (above as f64) >= self.cfg.mark_fraction * meta.filled as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_sequential_pattern_builds_confidence() {
        let mut d = Detector::new(DetectorConfig::default(), 4);
        // Fig. 8 semantics: k_bwd tracks a *fixed successor*. An
        // ascending run 14, 15, 16 … inserted before existing key 19
        // always sees successor 19.
        for k in 14..19 {
            d.on_insert(0, k, Some(k - 1), Some(19));
        }
        let m = d.segment(0);
        assert_eq!(m.kbwd.value, 19);
        assert!(
            m.kbwd.counter >= d.config().theta_sc,
            "kbwd counter {} too low",
            m.kbwd.counter
        );
    }

    #[test]
    fn forward_sequential_pattern_builds_confidence() {
        let mut d = Detector::new(DetectorConfig::default(), 4);
        // k_fwd tracks a *fixed predecessor*: a descending run 150,
        // 149, 148 … inserted after existing key 100 always sees
        // predecessor 100.
        for k in (140..150).rev() {
            d.on_insert(1, k, Some(100), Some(k + 1));
        }
        let m = d.segment(1);
        assert_eq!(m.kfwd.value, 100);
        assert!(m.kfwd.counter >= d.config().theta_sc);
    }

    #[test]
    fn random_inserts_decay_counters() {
        let mut d = Detector::new(DetectorConfig::default(), 2);
        for k in [5i64, 100, 3, 77, 42, 9, 64, 21] {
            d.on_insert(0, k, Some(k - 1), Some(k + 1000));
        }
        let m = d.segment(0);
        assert!(m.kbwd.counter <= 1, "no stable backward pattern expected");
        assert!(m.kfwd.counter <= 1);
    }

    #[test]
    fn sc_tracks_insert_delete_balance_with_saturation() {
        let cfg = DetectorConfig::default();
        let mut d = Detector::new(cfg, 1);
        for _ in 0..20 {
            d.on_insert(0, 1, None, None);
        }
        assert_eq!(d.segment(0).sc, cfg.sc_max as i16);
        for _ in 0..40 {
            d.on_delete(0);
        }
        assert_eq!(d.segment(0).sc, -(cfg.sc_max as i16));
    }

    #[test]
    fn recency_marks_only_hammered_segment() {
        let mut d = Detector::new(DetectorConfig::default(), 8);
        // Balanced background activity (round-robin)...
        for k in 0..8 {
            for s in 0..8 {
                d.on_insert(s, k, None, None);
            }
        }
        // ...then hammer segment 3.
        for k in 0..8 {
            d.on_insert(3, k, None, None);
        }
        let cutoff = d.recency_cutoff(0..8).unwrap();
        assert!(d.is_recent(3, cutoff), "hammered segment must be marked");
        let marked: Vec<usize> = (0..8).filter(|&s| d.is_recent(s, cutoff)).collect();
        assert_eq!(marked, vec![3]);
    }

    #[test]
    fn uniform_activity_marks_nothing_or_everything_weakly() {
        let mut d = Detector::new(DetectorConfig::default(), 16);
        for round in 0..16 {
            for s in 0..16 {
                d.on_insert(s, round, None, None);
            }
        }
        let cutoff = d.recency_cutoff(0..16).unwrap();
        let marked = (0..16).filter(|&s| d.is_recent(s, cutoff)).count();
        assert!(
            marked <= 2,
            "uniform activity should not mark segments, got {marked}"
        );
    }

    #[test]
    fn empty_window_has_no_cutoff() {
        let d = Detector::new(DetectorConfig::default(), 4);
        assert_eq!(d.recency_cutoff(0..4), None);
    }

    #[test]
    fn reset_clears_metadata() {
        let mut d = Detector::new(DetectorConfig::default(), 2);
        d.on_insert(0, 1, None, None);
        d.reset(4);
        assert_eq!(d.num_segments(), 4);
        assert_eq!(d.segment(0).timestamps().len(), 0);
    }
}
