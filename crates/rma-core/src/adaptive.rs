//! Adaptive rebalancing (§IV): the preprocessing phase that turns
//! Detector metadata into *marked intervals*, and the recursive
//! adaptive algorithm (Algorithm 2) that converts marked intervals
//! into per-segment target cardinalities.
//!
//! A marked interval `⟨s, l⟩` states that new updates are expected
//! among the elements at sorted positions `[s, s + l)` of the window
//! being rebalanced. Insert-dominant intervals (score +1) are pushed
//! towards the child with fewer elements (more future gaps);
//! delete-dominant intervals (score −1) towards the denser child. The
//! sanitisation step (lines 9–14 of Algorithm 2) clamps every split to
//! the child density thresholds, which preserves the amortised
//! `O(log²N / B)` bound.

use crate::detector::Detector;
use crate::storage::Storage;
use crate::thresholds::Thresholds;

/// A predicted-update interval within a rebalance window, in element
/// positions of the window's sorted content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkedInterval {
    /// First element position (window-relative).
    pub start: usize,
    /// Number of elements covered.
    pub len: usize,
    /// +1 for insert-dominant hammering, −1 for delete-dominant.
    pub score: i32,
}

/// Preprocessing phase: inspects the Detector for the window
/// `segs` and emits the marked intervals (sorted by position).
pub fn compute_marked_intervals(
    detector: &Detector,
    storage: &Storage,
    segs: std::ops::Range<usize>,
) -> Vec<MarkedInterval> {
    let cfg = *detector.config();
    let Some(cutoff) = detector.recency_cutoff(segs.clone()) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut prefix = 0usize; // elements before the current segment
    for seg in segs {
        let card = storage.card(seg);
        let meta = detector.segment(seg);
        let marked =
            detector.is_recent(seg, cutoff) && meta.sc.unsigned_abs() >= cfg.theta_sc as u16;
        if marked && card > 0 {
            let score = if meta.sc > 0 { 1 } else { -1 };
            // Prefer the 2-element interval of a confident sequential
            // predictor; fall back to the whole segment.
            let interval = confident_pair(storage, seg, meta, cfg.theta_sc).map_or(
                MarkedInterval {
                    start: prefix,
                    len: card,
                    score,
                },
                |(pos, len)| MarkedInterval {
                    start: prefix + pos,
                    len,
                    score,
                },
            );
            out.push(interval);
        }
        prefix += card;
    }
    out
}

/// Returns the in-segment position and length of the segment's
/// predicted hot interval.
///
/// A predictor with counter `≥ θ` gives the paper's confident
/// 2-element interval. Failing that, a predictor whose key is still
/// present in the segment gives a *positional* 2-element estimate —
/// even an oscillating counter keeps its key near the most recent
/// insertions, so the location is informative. Only when neither key
/// can be located does the whole segment get marked; such oversized
/// intervals carry no position information and are handled by the
/// "too big" rule of Algorithm 2.
fn confident_pair(
    storage: &Storage,
    seg: usize,
    meta: &crate::detector::SegmentMeta,
    theta: u8,
) -> Option<(usize, usize)> {
    let card = storage.card(seg);
    let locate = |key: i64| -> Option<usize> {
        let pos = storage.seg_lower_bound(seg, key);
        (pos < card && storage.seg_keys(seg)[pos] == key).then_some(pos)
    };
    // Prefer the more confident predictor; break ties backward-first.
    let order = if meta.kfwd.counter > meta.kbwd.counter {
        [(meta.kfwd, false), (meta.kbwd, true)]
    } else {
        [(meta.kbwd, true), (meta.kfwd, false)]
    };
    for (pred, backward) in order {
        if pred.counter == 0 && pred.counter < theta {
            continue;
        }
        if let Some(pos) = locate(pred.value) {
            return Some(if backward {
                // Backward pattern: inserts land in [pred(k_bwd), k_bwd].
                let start = pos.saturating_sub(1);
                (start, (card - start).min(2))
            } else {
                // Forward pattern: inserts land in [k_fwd, succ(k_fwd)].
                (pos, (card - pos).min(2))
            });
        }
    }
    None
}

/// Algorithm 2: computes target cardinalities for the `num_segs`
/// segments of a window holding `total` elements, honouring the
/// marked `intervals` and the density `thresholds` of a calibrator
/// tree with `height` levels and segments of `seg_size` slots.
pub fn adaptive_targets(
    seg_size: usize,
    num_segs: usize,
    total: usize,
    intervals: &[MarkedInterval],
    thresholds: &Thresholds,
    height: usize,
) -> Vec<usize> {
    debug_assert!(total <= num_segs * seg_size);
    let mut targets = vec![0usize; num_segs];
    let iv: Vec<MarkedInterval> = intervals
        .iter()
        .copied()
        .filter(|i| i.len > 0 && i.start < total)
        .collect();
    recurse(
        seg_size,
        0,
        num_segs,
        0,
        total,
        &iv,
        thresholds,
        height,
        &mut targets,
    );
    debug_assert_eq!(targets.iter().sum::<usize>(), total);
    targets
}

/// Level of a calibrator node covering `m` segments (1 = segment).
fn level_of(m: usize) -> usize {
    (usize::BITS - (m - 1).leading_zeros()) as usize + 1
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    seg_size: usize,
    seg_lo: usize,
    seg_hi: usize,
    r_start: usize,
    r_len: usize,
    intervals: &[MarkedInterval],
    thresholds: &Thresholds,
    height: usize,
    targets: &mut [usize],
) {
    let m = seg_hi - seg_lo;
    if m == 1 {
        debug_assert!(r_len <= seg_size, "segment target over capacity");
        targets[seg_lo] = r_len;
        return;
    }
    // Split the node into its two calibrator children: the left child
    // covers the aligned power-of-two block, the right child the rest
    // (smaller when the window is clamped at the array edge).
    let half = 1usize << (usize::BITS - 1 - (m - 1).leading_zeros());
    let left_cap = half * seg_size;
    let right_cap = (m - half) * seg_size;

    // Line 3: a window of two segments with an oversized marked
    // interval is simply split evenly — an interval spanning half the
    // content carries no usable position information.
    let oversized = intervals.iter().any(|i| i.len >= r_len.div_ceil(2).max(1));
    let mut cut = if intervals.is_empty() || (m == 2 && oversized) {
        split_even(r_len, left_cap, right_cap)
    } else {
        objective_function(r_start, r_len, intervals)
    };

    // Lines 9–14: sanitise against the child density thresholds.
    let child_level = level_of(half).max(level_of(m - half));
    let child_level = child_level.min(height.saturating_sub(1)).max(1);
    let min_left = thresholds
        .min_card(child_level, height, left_cap)
        .max(r_len.saturating_sub(thresholds.max_card(child_level, height, right_cap)));
    let max_left = thresholds
        .max_card(child_level, height, left_cap)
        .min(r_len.saturating_sub(thresholds.min_card(child_level, height, right_cap)));
    if min_left <= max_left {
        cut = cut.clamp(min_left, max_left);
    } else {
        // Conflicting constraints (can happen on clamped windows at
        // the array edge): fall back to a feasible even split.
        cut = split_even(r_len, left_cap, right_cap);
    }
    // Never exceed physical capacities.
    cut = cut
        .max(r_len.saturating_sub(right_cap))
        .min(left_cap)
        .min(r_len);

    let (left_iv, right_iv) = partition_intervals(intervals, r_start + cut);
    recurse(
        seg_size,
        seg_lo,
        seg_lo + half,
        r_start,
        cut,
        &left_iv,
        thresholds,
        height,
        targets,
    );
    recurse(
        seg_size,
        seg_lo + half,
        seg_hi,
        r_start + cut,
        r_len - cut,
        &right_iv,
        thresholds,
        height,
        targets,
    );
}

/// Even split proportional to child capacities (plain TPMA behaviour).
fn split_even(r_len: usize, left_cap: usize, right_cap: usize) -> usize {
    (r_len * left_cap).div_ceil(left_cap + right_cap).min(r_len)
}

/// The objective function of Algorithm 2: chooses how many elements
/// go to the left child so marked intervals are balanced by score and
/// count, and an unpaired interval lands in the child that suits its
/// score (insert → sparser child, delete → denser child).
fn objective_function(r_start: usize, r_len: usize, intervals: &[MarkedInterval]) -> usize {
    debug_assert!(!intervals.is_empty());
    if intervals.len() == 1 {
        let iv = intervals[0];
        let before = iv.start.saturating_sub(r_start).min(r_len);
        let after = r_len - (before + iv.len).min(r_len);
        if iv.score >= 0 {
            // Insert-dominant: the interval goes to the child with
            // fewer elements, so gaps accumulate where inserts land.
            let interval_left = before <= after;
            return if interval_left {
                before + iv.len.min(r_len - before)
            } else {
                before
            };
        }
        // Delete-dominant: the child positionally containing the
        // interval should stay as dense as the thresholds allow, so
        // future deletions free space where they land. The sanitise
        // step clamps the extreme cut into the feasible range.
        let interval_positionally_left = before + iv.len / 2 <= r_len / 2;
        return if interval_positionally_left { r_len } else { 0 };
    }
    // Several intervals: pick the boundary j (intervals[..j] left)
    // that balances cumulative score first, then count; place the cut
    // midway in the gap between the two boundary intervals.
    let total_score: i32 = intervals.iter().map(|i| i.score).sum();
    let total_count = intervals.len() as i32;
    let mut best_j = 1;
    let mut best = (i32::MAX, i32::MAX);
    let mut left_score = 0;
    for j in 1..intervals.len() {
        left_score += intervals[j - 1].score;
        let score_diff = (2 * left_score - total_score).abs();
        let count_diff = (2 * j as i32 - total_count).abs();
        if (score_diff, count_diff) < best {
            best = (score_diff, count_diff);
            best_j = j;
        }
    }
    let gap_lo = intervals[best_j - 1].start + intervals[best_j - 1].len;
    let gap_hi = intervals[best_j].start;
    let mid = gap_lo + (gap_hi.saturating_sub(gap_lo)) / 2;
    mid.saturating_sub(r_start).min(r_len)
}

/// Splits intervals at absolute element position `cut_abs`; straddling
/// intervals are divided into two pieces.
fn partition_intervals(
    intervals: &[MarkedInterval],
    cut_abs: usize,
) -> (Vec<MarkedInterval>, Vec<MarkedInterval>) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &iv in intervals {
        let end = iv.start + iv.len;
        if end <= cut_abs {
            left.push(iv);
        } else if iv.start >= cut_abs {
            right.push(iv);
        } else {
            left.push(MarkedInterval {
                start: iv.start,
                len: cut_abs - iv.start,
                score: iv.score,
            });
            right.push(MarkedInterval {
                start: cut_abs,
                len: end - cut_abs,
                score: iv.score,
            });
        }
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ut() -> Thresholds {
        Thresholds::update_oriented()
    }

    /// The paper's running example (Fig. 2a / Fig. 7): 16 elements in
    /// 4 segments of 6 slots; the last insertions were 14, 15, 16, so
    /// the marked interval is the pair {16, 19} at positions (4, 2).
    /// The paper's thresholds for that figure are ρ₁=0.1, τ₁=1,
    /// ρ₂=0.2, τ₂=0.875, ρ₃=0.3, τ₃=0.75. Expected targets: [4,2,5,5].
    #[test]
    fn reproduces_fig7_example() {
        let t = Thresholds {
            rho_1: 0.1,
            rho_h: 0.3,
            tau_h: 0.75,
            tau_1: 1.0,
            policy: crate::thresholds::ResizePolicy::Double,
        };
        let iv = [MarkedInterval {
            start: 4,
            len: 2,
            score: 1,
        }];
        // Segment size 6 is not a power of two; the algorithm itself
        // has no such requirement (only the storage does).
        let targets = adaptive_targets(6, 4, 16, &iv, &t, 3);
        assert_eq!(targets, vec![4, 2, 5, 5]);
    }

    #[test]
    fn no_intervals_gives_even_spread() {
        let targets = adaptive_targets(8, 4, 16, &[], &ut(), 3);
        assert_eq!(targets, vec![4, 4, 4, 4]);
    }

    #[test]
    fn targets_always_sum_to_total() {
        for total in [0usize, 1, 7, 16, 24, 30] {
            for iv_start in [0usize, 3, 10] {
                let iv = [MarkedInterval {
                    start: iv_start,
                    len: 2,
                    score: 1,
                }];
                let targets = adaptive_targets(8, 4, total, &iv, &ut(), 3);
                assert_eq!(targets.iter().sum::<usize>(), total, "total={total}");
                assert!(targets.iter().all(|&t| t <= 8));
            }
        }
    }

    #[test]
    fn delete_interval_moves_to_denser_side() {
        // 12 elements, delete hammering at the front: the front
        // partition should receive MORE elements (denser), so future
        // deletes free space where they land.
        let iv = [MarkedInterval {
            start: 0,
            len: 2,
            score: -1,
        }];
        let del = adaptive_targets(8, 2, 12, &iv, &ut(), 2);
        let ins = adaptive_targets(
            8,
            2,
            12,
            &[MarkedInterval {
                start: 0,
                len: 2,
                score: 1,
            }],
            &ut(),
            2,
        );
        assert!(
            del[0] >= ins[0],
            "delete hammering should keep the hammered side denser: del={del:?} ins={ins:?}"
        );
    }

    #[test]
    fn two_intervals_split_between_children() {
        let iv = [
            MarkedInterval {
                start: 1,
                len: 2,
                score: 1,
            },
            MarkedInterval {
                start: 13,
                len: 2,
                score: 1,
            },
        ];
        let targets = adaptive_targets(8, 4, 16, &iv, &ut(), 3);
        assert_eq!(targets.iter().sum::<usize>(), 16);
        // Both halves keep their hammered interval; neither side is
        // starved below the level-2 lower threshold.
        assert!(targets[0] + targets[1] >= 4);
        assert!(targets[2] + targets[3] >= 4);
    }

    #[test]
    fn straddling_interval_is_partitioned() {
        let iv = [MarkedInterval {
            start: 0,
            len: 16,
            score: 1,
        }];
        let targets = adaptive_targets(8, 4, 16, &iv, &ut(), 3);
        assert_eq!(targets.iter().sum::<usize>(), 16);
    }

    #[test]
    fn non_power_of_two_window() {
        let targets = adaptive_targets(8, 3, 20, &[], &ut(), 3);
        assert_eq!(targets.iter().sum::<usize>(), 20);
        assert!(targets.iter().all(|&t| t <= 8));
    }

    #[test]
    fn full_window_distributes_capacity() {
        let targets = adaptive_targets(4, 4, 16, &[], &ut(), 3);
        assert_eq!(targets, vec![4, 4, 4, 4]);
    }

    #[test]
    fn partition_intervals_splits_straddlers() {
        let iv = [MarkedInterval {
            start: 2,
            len: 6,
            score: 1,
        }];
        let (l, r) = partition_intervals(&iv, 5);
        assert_eq!(
            l,
            vec![MarkedInterval {
                start: 2,
                len: 3,
                score: 1
            }]
        );
        assert_eq!(
            r,
            vec![MarkedInterval {
                start: 5,
                len: 3,
                score: 1
            }]
        );
    }
}
