//! Clustered segment storage (§III "Segments").
//!
//! Keys and values live in two parallel rewirable columns (the
//! key-value split), logically divided into fixed-size segments of `B`
//! slots. Inside a segment, elements are *clustered* against one
//! boundary — the right end for the first segment of each pair, the
//! left end for the second — so each pair of segments exposes one
//! contiguous run of elements with all gaps pushed to the pair's outer
//! edges. A side array `cards` tracks per-segment cardinalities;
//! storage content in gap slots is never read.
//!
//! ```text
//! pair 0                      pair 1
//! [..gaps..|elems][elems|..gaps..][..gaps..|elems][elems|..gaps..]
//!  seg 0           seg 1           seg 2           seg 3
//! ```

use crate::config::{RewiringMode, RmaConfig};
use crate::{Key, Value};
use rewiring::{BackendKind, RewireOptions, RewiredVec};

/// The two clustered columns plus cardinalities.
pub struct Storage {
    pub(crate) keys: RewiredVec<i64>,
    pub(crate) vals: RewiredVec<i64>,
    pub(crate) cards: Vec<u32>,
    seg_size: usize,
}

impl Storage {
    /// Creates storage with one empty segment.
    pub fn new(cfg: &RmaConfig) -> Self {
        let (page_bytes, force_heap) = match cfg.rewiring {
            RewiringMode::Enabled { page_bytes } => (page_bytes, false),
            // Without rewiring the backend is irrelevant; the heap
            // backend avoids accidentally benefiting from mmap.
            RewiringMode::Disabled => (64 << 10, true),
        };
        let opts = RewireOptions {
            page_bytes,
            reserve_bytes: cfg.reserve_bytes,
            force_heap,
            huge_pages: cfg.huge_pages,
        };
        let mut keys = RewiredVec::new(opts);
        let mut vals = RewiredVec::new(opts);
        keys.resize_in_place(cfg.segment_size);
        vals.resize_in_place(cfg.segment_size);
        Storage {
            keys,
            vals,
            cards: vec![0],
            seg_size: cfg.segment_size,
        }
    }

    /// Segment capacity `B`.
    #[inline]
    pub fn seg_size(&self) -> usize {
        self.seg_size
    }

    /// Number of segments.
    #[inline]
    pub fn seg_count(&self) -> usize {
        self.cards.len()
    }

    /// Total slot capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.seg_count() * self.seg_size
    }

    /// Total stored elements.
    pub fn total_cards(&self) -> usize {
        self.cards.iter().map(|&c| c as usize).sum()
    }

    /// Cardinality of segment `seg`.
    #[inline]
    pub fn card(&self, seg: usize) -> usize {
        self.cards[seg] as usize
    }

    /// True if this segment packs its elements against its right end
    /// (the first segment of each pair; the paper numbers segments
    /// from 1 and packs odd ones right).
    #[inline]
    pub fn packs_right(seg: usize) -> bool {
        seg.is_multiple_of(2)
    }

    /// Occupied slot range of segment `seg` in the columns.
    #[inline]
    pub fn seg_range(&self, seg: usize) -> std::ops::Range<usize> {
        let base = seg * self.seg_size;
        let c = self.cards[seg] as usize;
        if Self::packs_right(seg) {
            base + self.seg_size - c..base + self.seg_size
        } else {
            base..base + c
        }
    }

    /// Keys of segment `seg`, in sorted order.
    #[inline]
    pub fn seg_keys(&self, seg: usize) -> &[Key] {
        &self.keys.as_slice()[self.seg_range(seg)]
    }

    /// Values of segment `seg`, parallel to [`Storage::seg_keys`].
    #[inline]
    pub fn seg_vals(&self, seg: usize) -> &[Value] {
        &self.vals.as_slice()[self.seg_range(seg)]
    }

    /// Minimum key of segment `seg`; the segment must be non-empty.
    #[inline]
    pub fn seg_min(&self, seg: usize) -> Key {
        debug_assert!(self.cards[seg] > 0);
        self.keys.as_slice()[self.seg_range(seg).start]
    }

    /// Which backend the columns ended up on.
    pub fn backend_kind(&self) -> BackendKind {
        self.keys.backend_kind()
    }

    /// Physical bytes wired by the columns plus the cards array.
    pub fn memory_footprint(&self) -> usize {
        self.keys.wired_bytes() + self.vals.wired_bytes() + self.cards.capacity() * 4
    }

    /// Inserts `(k, v)` into `seg` keeping sorted order; the segment
    /// must have a free slot. Returns the insertion position within
    /// the segment (0 = new minimum).
    pub fn insert_into_segment(&mut self, seg: usize, k: Key, v: Value) -> usize {
        let c = self.cards[seg] as usize;
        debug_assert!(c < self.seg_size, "segment full");
        let base = seg * self.seg_size;
        let pos = self.seg_keys(seg).partition_point(|&x| x < k);
        let keys = self.keys.as_mut_slice();
        if Self::packs_right(seg) {
            // Occupied [base+B-c, base+B); grow leftward: elements
            // before `pos` shift one slot left.
            let start = base + self.seg_size - c;
            keys.copy_within(start..start + pos, start - 1);
            keys[start - 1 + pos] = k;
            let vals = self.vals.as_mut_slice();
            vals.copy_within(start..start + pos, start - 1);
            vals[start - 1 + pos] = v;
        } else {
            // Occupied [base, base+c); grow rightward: elements from
            // `pos` shift one slot right.
            keys.copy_within(base + pos..base + c, base + pos + 1);
            keys[base + pos] = k;
            let vals = self.vals.as_mut_slice();
            vals.copy_within(base + pos..base + c, base + pos + 1);
            vals[base + pos] = v;
        }
        self.cards[seg] += 1;
        pos
    }

    /// Removes the element at sorted position `pos` of segment `seg`,
    /// returning it.
    pub fn remove_from_segment(&mut self, seg: usize, pos: usize) -> (Key, Value) {
        let c = self.cards[seg] as usize;
        debug_assert!(pos < c);
        let base = seg * self.seg_size;
        let keys = self.keys.as_mut_slice();
        let out_k;
        let out_v;
        if Self::packs_right(seg) {
            let start = base + self.seg_size - c;
            out_k = keys[start + pos];
            keys.copy_within(start..start + pos, start + 1);
            let vals = self.vals.as_mut_slice();
            out_v = vals[start + pos];
            vals.copy_within(start..start + pos, start + 1);
        } else {
            out_k = keys[base + pos];
            keys.copy_within(base + pos + 1..base + c, base + pos);
            let vals = self.vals.as_mut_slice();
            out_v = vals[base + pos];
            vals.copy_within(base + pos + 1..base + c, base + pos);
        }
        self.cards[seg] -= 1;
        (out_k, out_v)
    }

    /// Position of the first key `>= k` within segment `seg`.
    #[inline]
    pub fn seg_lower_bound(&self, seg: usize, k: Key) -> usize {
        self.seg_keys(seg).partition_point(|&x| x < k)
    }

    /// Checks the clustering invariants; test helper.
    pub fn check_invariants(&self) {
        assert_eq!(self.keys.len(), self.capacity());
        assert_eq!(self.vals.len(), self.capacity());
        let mut prev: Option<Key> = None;
        for seg in 0..self.seg_count() {
            assert!(
                self.cards[seg] as usize <= self.seg_size,
                "overfull segment"
            );
            let ks = self.seg_keys(seg);
            for w in ks.windows(2) {
                assert!(w[0] <= w[1], "unsorted segment {seg}");
            }
            if let (Some(p), Some(&first)) = (prev, ks.first()) {
                assert!(p <= first, "segments out of order at {seg}");
            }
            if let Some(&last) = ks.last() {
                prev = Some(last);
            }
        }
    }
}

impl std::fmt::Debug for Storage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Storage")
            .field("seg_size", &self.seg_size)
            .field("segments", &self.seg_count())
            .field("elements", &self.total_cards())
            .field("backend", &self.backend_kind())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storage(b: usize) -> Storage {
        let cfg = RmaConfig {
            segment_size: b,
            rewiring: RewiringMode::Disabled,
            reserve_bytes: 1 << 24,
            ..Default::default()
        };
        Storage::new(&cfg)
    }

    fn grow_to(st: &mut Storage, segs: usize) {
        let b = st.seg_size();
        st.keys.resize_in_place(segs * b);
        st.vals.resize_in_place(segs * b);
        st.cards.resize(segs, 0);
    }

    #[test]
    fn right_packed_insert_clusters_to_right_boundary() {
        let mut st = storage(8);
        for k in [5, 1, 9] {
            st.insert_into_segment(0, k, k);
        }
        assert_eq!(st.seg_range(0), 5..8);
        assert_eq!(st.seg_keys(0), &[1, 5, 9]);
        assert_eq!(st.seg_vals(0), &[1, 5, 9]);
        st.check_invariants();
    }

    #[test]
    fn left_packed_insert_clusters_to_left_boundary() {
        let mut st = storage(8);
        grow_to(&mut st, 2);
        for k in [50, 10, 90] {
            st.insert_into_segment(1, k, -k);
        }
        assert_eq!(st.seg_range(1), 8..11);
        assert_eq!(st.seg_keys(1), &[10, 50, 90]);
        assert_eq!(st.seg_vals(1), &[-10, -50, -90]);
    }

    #[test]
    fn pair_forms_contiguous_run() {
        let mut st = storage(4);
        grow_to(&mut st, 2);
        for k in [1, 2, 3] {
            st.insert_into_segment(0, k, k);
        }
        for k in [4, 5] {
            st.insert_into_segment(1, k, k);
        }
        // seg0 occupies slots [1,4), seg1 occupies [4,6): contiguous.
        assert_eq!(st.seg_range(0).end, st.seg_range(1).start);
        let run: Vec<i64> = st.keys.as_slice()[1..6].to_vec();
        assert_eq!(run, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn remove_maintains_clustering() {
        let mut st = storage(8);
        for k in [1, 2, 3, 4, 5] {
            st.insert_into_segment(0, k, k * 10);
        }
        let (k, v) = st.remove_from_segment(0, 2);
        assert_eq!((k, v), (3, 30));
        assert_eq!(st.seg_keys(0), &[1, 2, 4, 5]);
        assert_eq!(st.seg_range(0), 4..8);
        let (k, _) = st.remove_from_segment(0, 0);
        assert_eq!(k, 1);
        assert_eq!(st.seg_keys(0), &[2, 4, 5]);
        st.check_invariants();
    }

    #[test]
    fn remove_from_left_packed() {
        let mut st = storage(8);
        grow_to(&mut st, 2);
        for k in [1, 2, 3, 4] {
            st.insert_into_segment(1, k, k);
        }
        let (k, _) = st.remove_from_segment(1, 3);
        assert_eq!(k, 4);
        assert_eq!(st.seg_range(1), 8..11);
        assert_eq!(st.seg_keys(1), &[1, 2, 3]);
    }

    #[test]
    fn fill_segment_to_capacity() {
        let mut st = storage(8);
        for k in 0..8 {
            st.insert_into_segment(0, k, k);
        }
        assert_eq!(st.card(0), 8);
        assert_eq!(st.seg_range(0), 0..8);
        assert_eq!(st.seg_keys(0), &[0, 1, 2, 3, 4, 5, 6, 7]);
        st.check_invariants();
    }

    #[test]
    fn lower_bound_within_segment() {
        let mut st = storage(8);
        for k in [10, 20, 30] {
            st.insert_into_segment(0, k, k);
        }
        assert_eq!(st.seg_lower_bound(0, 5), 0);
        assert_eq!(st.seg_lower_bound(0, 20), 1);
        assert_eq!(st.seg_lower_bound(0, 25), 2);
        assert_eq!(st.seg_lower_bound(0, 99), 3);
    }

    #[test]
    fn duplicate_keys_preserve_insertion_neighbourhood() {
        let mut st = storage(8);
        for (k, v) in [(5, 1), (5, 2), (5, 3)] {
            st.insert_into_segment(0, k, v);
        }
        assert_eq!(st.seg_keys(0), &[5, 5, 5]);
        st.check_invariants();
    }

    #[test]
    fn footprint_counts_wired_pages() {
        let st = storage(8);
        assert!(st.memory_footprint() >= 2 * 8 * 8);
    }
}
