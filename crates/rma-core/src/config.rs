//! Construction-time configuration of an [`crate::Rma`].

use crate::detector::DetectorConfig;
use crate::thresholds::Thresholds;

/// Whether rebalances/resizes use true memory rewiring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewiringMode {
    /// Rewire pages via `memfd` + `mmap(MAP_FIXED)` when the window is
    /// at least one logical page; smaller windows fall back to the
    /// copy path, as in the paper. `page_bytes` is the logical page
    /// size (the paper uses 2 MB huge pages).
    Enabled {
        /// Logical page size in bytes (power of two).
        page_bytes: usize,
    },
    /// Always use the two-copy auxiliary-buffer path (the paper's
    /// `-RWR` ablation).
    Disabled,
}

/// Configuration of the Rewired Memory Array.
#[derive(Debug, Clone, Copy)]
pub struct RmaConfig {
    /// Segment capacity `B`, in elements. The paper's evaluation fixes
    /// `B = 128` except where it sweeps the parameter (Fig. 10).
    pub segment_size: usize,
    /// Maximum separator keys per static-index node (the paper's
    /// micro-benchmarked optimum is 64).
    pub index_fanout: usize,
    /// Density thresholds + resize policy (UT or ST preset).
    pub thresholds: Thresholds,
    /// Memory rewiring mode for rebalances and resizes.
    pub rewiring: RewiringMode,
    /// Adaptive rebalancing: `Some` enables the Detector and the
    /// adaptive algorithm of §IV; `None` always rebalances evenly.
    pub adaptive: Option<DetectorConfig>,
    /// Total virtual reservation per storage column, in bytes. Bounds
    /// the maximum capacity; the paper reserves 2^37 bytes.
    pub reserve_bytes: usize,
    /// Hint the kernel to back reservations with transparent huge
    /// pages (the paper's 2 MB huge-page setup). Leave on for
    /// throughput; turn off in latency-sensitive deployments that
    /// churn mappings, where `defrag=madvise` kernels stall page
    /// faults on synchronous compaction.
    pub huge_pages: bool,
}

impl Default for RmaConfig {
    fn default() -> Self {
        RmaConfig {
            segment_size: 128,
            index_fanout: 64,
            thresholds: Thresholds::update_oriented(),
            rewiring: RewiringMode::Enabled {
                page_bytes: 2 << 20,
            },
            adaptive: Some(DetectorConfig::default()),
            reserve_bytes: 1 << 33,
            huge_pages: true,
        }
    }
}

impl RmaConfig {
    /// Default configuration with segment capacity `b`.
    pub fn with_segment_size(b: usize) -> Self {
        RmaConfig {
            segment_size: b,
            ..Default::default()
        }
    }

    /// Switches off both rewiring and adaptive rebalancing — the
    /// "static index" rung of the Fig. 14 feature ladder.
    pub fn plain(mut self) -> Self {
        self.rewiring = RewiringMode::Disabled;
        self.adaptive = None;
        self
    }

    /// Enables/disables adaptive rebalancing in place.
    pub fn adaptive(mut self, on: bool) -> Self {
        self.adaptive = if on {
            Some(DetectorConfig::default())
        } else {
            None
        };
        self
    }

    /// Enables/disables rewiring in place (the paper's 2 MiB pages).
    pub fn rewired(mut self, on: bool) -> Self {
        self.rewiring = if on {
            RewiringMode::Enabled {
                page_bytes: 2 << 20,
            }
        } else {
            RewiringMode::Disabled
        };
        self
    }

    /// Replaces the threshold preset.
    pub fn with_thresholds(mut self, t: Thresholds) -> Self {
        self.thresholds = t;
        self
    }

    /// Validates parameter sanity; called by [`crate::Rma::new`].
    /// Panicking form of [`try_validate`](Self::try_validate).
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Checks parameter sanity without panicking, so builder-style
    /// front-ends can reject a bad configuration with a typed error
    /// before any construction work starts.
    pub fn try_validate(&self) -> Result<(), RmaConfigError> {
        if self.segment_size < 4 {
            return Err(RmaConfigError::SegmentTooSmall(self.segment_size));
        }
        if !self.segment_size.is_power_of_two() {
            return Err(RmaConfigError::SegmentNotPowerOfTwo(self.segment_size));
        }
        if self.index_fanout < 2 {
            return Err(RmaConfigError::FanoutTooSmall(self.index_fanout));
        }
        self.thresholds
            .try_validate()
            .map_err(RmaConfigError::Thresholds)?;
        if let RewiringMode::Enabled { page_bytes } = self.rewiring {
            if !page_bytes.is_power_of_two() {
                return Err(RmaConfigError::PageNotPowerOfTwo(page_bytes));
            }
            if page_bytes < 4096 {
                return Err(RmaConfigError::PageTooSmall(page_bytes));
            }
        }
        Ok(())
    }
}

/// A rejected [`RmaConfig`] parameter, as reported by
/// [`RmaConfig::try_validate`]. The `Display` text doubles as the
/// panic message of the asserting [`RmaConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmaConfigError {
    /// Segment capacity below the minimum of 4 elements.
    SegmentTooSmall(usize),
    /// Segment capacity is not a power of two.
    SegmentNotPowerOfTwo(usize),
    /// Static-index fanout below 2.
    FanoutTooSmall(usize),
    /// Density thresholds violate the designer ordering; the message
    /// names the broken rule.
    Thresholds(&'static str),
    /// Rewiring page size is not a power of two.
    PageNotPowerOfTwo(usize),
    /// Rewiring page size below 4 KiB.
    PageTooSmall(usize),
}

impl std::fmt::Display for RmaConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RmaConfigError::SegmentTooSmall(b) => {
                write!(f, "segment size must be >= 4 (got {b})")
            }
            RmaConfigError::SegmentNotPowerOfTwo(b) => {
                write!(f, "segment size must be a power of two (got {b})")
            }
            RmaConfigError::FanoutTooSmall(n) => {
                write!(f, "index fanout must be >= 2 (got {n})")
            }
            RmaConfigError::Thresholds(reason) => f.write_str(reason),
            RmaConfigError::PageNotPowerOfTwo(b) => {
                write!(f, "page size must be a power of two (got {b})")
            }
            RmaConfigError::PageTooSmall(b) => {
                write!(f, "page size must be >= 4 KiB (got {b})")
            }
        }
    }
}

impl std::error::Error for RmaConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        RmaConfig::default().validate();
    }

    #[test]
    fn builder_combinators() {
        let c = RmaConfig::with_segment_size(256)
            .adaptive(false)
            .rewired(false)
            .with_thresholds(Thresholds::scan_oriented());
        c.validate();
        assert_eq!(c.segment_size, 256);
        assert!(c.adaptive.is_none());
        assert_eq!(c.rewiring, RewiringMode::Disabled);
    }

    #[test]
    fn plain_strips_features() {
        let c = RmaConfig::default().plain();
        assert!(c.adaptive.is_none());
        assert_eq!(c.rewiring, RewiringMode::Disabled);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_segment_panics() {
        RmaConfig::with_segment_size(100).validate();
    }
}
