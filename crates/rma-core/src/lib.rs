//! The Rewired Memory Array (RMA) — the contribution of "Packed
//! Memory Arrays – Rewired" (De Leo & Boncz, ICDE 2019).
//!
//! An RMA is a sparse (packed memory) array storing sorted key/value
//! pairs with five features layered on a traditional PMA:
//!
//! 1. **Clustering** (§III "Segments"): inside each segment, elements
//!    are packed towards one boundary — right for odd-numbered
//!    segments, left for even — with a side `cards` array of
//!    per-segment cardinalities. Scans run one tight loop per two
//!    segments and never test for gaps.
//! 2. **Fixed-size segments**: segment capacity is the block-size
//!    tuning parameter `B` (like an (a,b)-tree leaf), not `O(log²N)`.
//!    A segment fills completely (`τ₁ = 1`) before any rebalance.
//! 3. **Static index** (§III "Index", Fig. 5): a pointer-eliminated
//!    B+-tree over segment minima, rebuilt only at resizes; individual
//!    separator updates during rebalances are O(1).
//! 4. **Memory rewiring** (§III "Rebalancing", Fig. 6): rebalances and
//!    resizes redistribute elements into spare physical pages and swap
//!    virtual mappings — one copy per element instead of two.
//! 5. **Adaptive rebalancing** (§IV): a per-segment Detector predicts
//!    insertion/deletion hot spots; rebalances then place gaps where
//!    new inserts are expected (marked intervals), fixing the APMA
//!    ping-pong pathology and supporting deletions via ±1 scores.
//!
//! Plus the bottom-up **bulk loading** of §III, with the top-down
//! scheme of Durand et al. (DRF12) implemented as the baseline.
//!
//! # Quick start
//!
//! ```
//! use rma_core::{Rma, RmaConfig};
//!
//! let mut rma = Rma::new(RmaConfig::default());
//! for k in 0..10_000i64 {
//!     rma.insert(k, k * 2);
//! }
//! assert_eq!(rma.get(4321), Some(8642));
//! let (visited, sum) = rma.sum_range(100, 50);
//! assert_eq!(visited, 50);
//! assert!(sum > 0);
//! rma.remove(4321);
//! assert_eq!(rma.get(4321), None);
//! ```

pub mod adaptive;
pub mod bulk;
pub mod config;
pub mod detector;
pub mod index;
pub mod rma;
pub mod stats;
pub mod storage;
pub mod thresholds;

pub use config::{RewiringMode, RmaConfig, RmaConfigError};
pub use detector::DetectorConfig;
pub use index::StaticIndex;
pub use rma::Rma;
pub use stats::RmaStats;
pub use thresholds::{ResizePolicy, Thresholds};

/// Key type (8-byte integer), shared across the reproduction.
pub type Key = i64;
/// Value type (8-byte integer), shared across the reproduction.
pub type Value = i64;
