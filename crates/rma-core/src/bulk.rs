//! Batch updates (§III "Bulk loading").
//!
//! The paper's **bottom-up** scheme works in three passes over a
//! sorted batch:
//!
//! 1. route every batch element to its target segment and compute the
//!    segments' *final* cardinalities;
//! 2. walk the touched segments and, for each overflow, find the
//!    smallest calibrator window whose upper threshold absorbs the new
//!    total — merging overlapping windows;
//! 3. left to right: segments not covered by a window merge their run
//!    in place; each window is rebalanced once, merging its runs with
//!    its existing elements.
//!
//! The **top-down** scheme of Durand et al. (VRIPHYS 2012) — the
//! paper's baseline — propagates the batch from the calibrator root:
//! when a child's (tighter) threshold would be violated, the *parent*
//! window is rebalanced with the batch merged in. Starting from the
//! top, where densities are tighter, causes rebalances the bottom-up
//! scheme avoids (the effect measured in Fig. 13b).
//!
//! Batches with deletions run an initial deletion pass with rebalances
//! disabled, then load the insertions.

use crate::rma::Rma;
use crate::{Key, Value};

impl Rma {
    /// Bottom-up bulk load of a batch sorted by key.
    pub fn load_bulk(&mut self, batch: &[(Key, Value)]) {
        debug_assert!(
            batch.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk batch must be sorted"
        );
        if batch.is_empty() {
            return;
        }
        // Pass 1: final cardinality per segment.
        let runs = self.route_batch(batch);
        let m = self.num_segments_internal();
        let b = self.segment_size_internal();
        let new_cards: Vec<usize> = (0..m)
            .map(|s| self.card_internal(s) + runs[s].len())
            .collect();

        // Global overflow: fall back to a rebuild at grown capacity.
        let total: usize = new_cards.iter().sum();
        let height = self.height_internal();
        let root_max = self
            .thresholds_internal()
            .max_card(height, height, m * b)
            .min(m * (b - 1));
        if total > root_max {
            self.rebuild_with_batch(batch);
            return;
        }

        // Pass 2: windows for overflowing segments, merged when they
        // overlap (windows at the same level are aligned, so any two
        // overlapping windows are nested — keep the larger).
        let windows = self.plan_windows(&new_cards);

        // Pass 3: apply right-to-left so slot movements of one window
        // never disturb the unprocessed segments to its left.
        let mut covered = vec![false; m];
        for w in &windows {
            for s in w.clone() {
                covered[s] = true;
            }
        }
        for w in windows.iter().rev() {
            self.merge_window(w.clone(), batch, &runs);
        }
        for s in (0..m).rev() {
            if !covered[s] && !runs[s].is_empty() {
                self.merge_segment(s, &batch[runs[s].clone()]);
            }
        }
        self.note_bulk_inserted(batch.len());
    }

    /// Top-down bulk load (the DRF12 baseline).
    pub fn load_bulk_top_down(&mut self, batch: &[(Key, Value)]) {
        debug_assert!(
            batch.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk batch must be sorted"
        );
        if batch.is_empty() {
            return;
        }
        let runs = self.route_batch(batch);
        let m = self.num_segments_internal();
        let b = self.segment_size_internal();
        let total: usize = (0..m)
            .map(|s| self.card_internal(s) + runs[s].len())
            .collect::<Vec<_>>()
            .iter()
            .sum();
        let height = self.height_internal();
        let root_max = self
            .thresholds_internal()
            .max_card(height, height, m * b)
            .min(m * (b - 1));
        if total > root_max {
            self.rebuild_with_batch(batch);
            return;
        }
        self.top_down_rec(0..m, height, batch, &runs);
        self.note_bulk_inserted(batch.len());
    }

    /// Batch with both insertions and deletions: deletions first (no
    /// rebalances), then the insertion load. `deletes` are exact keys;
    /// missing keys are ignored. Returns the number actually deleted.
    pub fn apply_batch(&mut self, inserts: &[(Key, Value)], deletes: &[Key]) -> usize {
        let deleted = self.delete_pass(deletes);
        self.load_bulk(inserts);
        deleted
    }

    fn top_down_rec(
        &mut self,
        segs: std::ops::Range<usize>,
        level: usize,
        batch: &[(Key, Value)],
        runs: &[std::ops::Range<usize>],
    ) {
        let m = segs.len();
        let b = self.segment_size_internal();
        if m == 1 {
            let s = segs.start;
            if !runs[s].is_empty() {
                self.merge_segment(s, &batch[runs[s].clone()]);
            }
            return;
        }
        // Check each child; a violated child threshold rebalances the
        // *current* window with the batch merged in.
        let half = 1usize << (usize::BITS - 1 - (m - 1).leading_zeros());
        let height = self.height_internal();
        let children = [segs.start..segs.start + half, segs.start + half..segs.end];
        for child in &children {
            let cap = child.len() * b;
            let new_total: usize = child
                .clone()
                .map(|s| self.card_internal(s) + runs[s].len())
                .sum();
            let child_level = level.saturating_sub(1).max(1);
            let max = self
                .thresholds_internal()
                .max_card(child_level, height, cap)
                .min(child.len() * if child.len() == 1 { b } else { b - 1 });
            if new_total > max {
                self.merge_window(segs, batch, runs);
                return;
            }
        }
        for child in children {
            if child.clone().any(|s| !runs[s].is_empty()) {
                self.top_down_rec(child, level - 1, batch, runs);
            }
        }
    }
}

// ----------------------------------------------------------------- //
// Internal passes shared by the bottom-up and top-down schemes.      //
// ----------------------------------------------------------------- //

use crate::rma::{cap_targets, even_targets, window_layout};

impl Rma {
    pub(crate) fn num_segments_internal(&self) -> usize {
        self.storage.seg_count()
    }

    pub(crate) fn segment_size_internal(&self) -> usize {
        self.cfg.segment_size
    }

    pub(crate) fn card_internal(&self, s: usize) -> usize {
        self.storage.card(s)
    }

    pub(crate) fn height_internal(&self) -> usize {
        self.height()
    }

    pub(crate) fn thresholds_internal(&self) -> &crate::thresholds::Thresholds {
        &self.cfg.thresholds
    }

    pub(crate) fn note_bulk_inserted(&mut self, n: usize) {
        self.len += n;
    }

    /// Pass 1: the contiguous batch run destined for each segment.
    pub(crate) fn route_batch(&self, batch: &[(Key, Value)]) -> Vec<std::ops::Range<usize>> {
        let m = self.storage.seg_count();
        let mut runs = Vec::with_capacity(m);
        let mut cursor = 0usize;
        for s in 0..m {
            if s + 1 < m {
                let sep = self
                    .index
                    .separator(s + 1)
                    .expect("separator for non-zero segment");
                let end = cursor + batch[cursor..].partition_point(|p| p.0 < sep);
                runs.push(cursor..end);
                cursor = end;
            } else {
                runs.push(cursor..batch.len());
            }
        }
        runs
    }

    /// Pass 2: the smallest window absorbing each overflowing segment,
    /// with overlapping windows merged.
    pub(crate) fn plan_windows(&self, new_cards: &[usize]) -> Vec<std::ops::Range<usize>> {
        let m = self.storage.seg_count();
        let b = self.cfg.segment_size;
        let height = self.height();
        let mut raw: Vec<std::ops::Range<usize>> = Vec::new();
        for s in 0..m {
            if new_cards[s] <= b {
                continue;
            }
            let mut w = 2usize;
            let mut level = 2usize;
            loop {
                assert!(level <= height, "global pre-check guarantees a window");
                let start = (s / w) * w;
                let end = (start + w).min(m);
                let cap = (end - start) * b;
                let total: usize = new_cards[start..end].iter().sum();
                let max = self
                    .cfg
                    .thresholds
                    .max_card(level, height, cap)
                    .min((end - start) * (b - 1));
                if total <= max {
                    raw.push(start..end);
                    break;
                }
                w *= 2;
                level += 1;
            }
        }
        raw.sort_by_key(|r| (r.start, std::cmp::Reverse(r.end)));
        let mut merged: Vec<std::ops::Range<usize>> = Vec::new();
        for r in raw {
            match merged.last_mut() {
                Some(last) if r.start < last.end => last.end = last.end.max(r.end),
                _ => merged.push(r),
            }
        }
        merged
    }

    /// Pass 3a: merges a batch run into one segment in place.
    pub(crate) fn merge_segment(&mut self, s: usize, run: &[(Key, Value)]) {
        let b = self.cfg.segment_size;
        let card = self.storage.card(s);
        assert!(card + run.len() <= b, "segment overflow in merge");
        self.scratch_keys.clear();
        self.scratch_vals.clear();
        merge_into(
            self.storage.seg_keys(s),
            self.storage.seg_vals(s),
            run,
            &mut self.scratch_keys,
            &mut self.scratch_vals,
        );
        let new_card = self.scratch_keys.len();
        let base = s * b;
        let dst = if crate::storage::Storage::packs_right(s) {
            base + b - new_card..base + b
        } else {
            base..base + new_card
        };
        self.storage.keys.as_mut_slice()[dst.clone()].copy_from_slice(&self.scratch_keys);
        self.storage.vals.as_mut_slice()[dst].copy_from_slice(&self.scratch_vals);
        self.storage.cards[s] = new_card as u32;
        if s > 0 {
            self.index.update(s, self.storage.seg_min(s));
        }
    }

    /// Pass 3b: rebalances a window once, merging its batch runs with
    /// its existing elements (even spread).
    pub(crate) fn merge_window(
        &mut self,
        segs: std::ops::Range<usize>,
        batch: &[(Key, Value)],
        runs: &[std::ops::Range<usize>],
    ) {
        let b = self.cfg.segment_size;
        let m = segs.len();
        let run_lo = runs[segs.start].start;
        let run_hi = runs[segs.end - 1].end;
        let run = &batch[run_lo..run_hi];
        let existing: usize = segs.clone().map(|s| self.storage.card(s)).sum();
        let total = existing + run.len();
        let mut targets = even_targets(total, m);
        cap_targets(&mut targets, b, total);
        self.stats.rebalances += 1;
        self.stats.elements_moved += total as u64;

        // Merge the window's elements with the run into scratch; the
        // rewired path then writes scratch into buffer pages (one copy
        // of scratch, which itself consumed one read of the array).
        self.scratch_keys.clear();
        self.scratch_vals.clear();
        {
            let mut ex_iter = segs
                .clone()
                .flat_map(|s| {
                    let r = self.storage.seg_range(s);
                    self.storage.keys.as_slice()[r.clone()]
                        .iter()
                        .copied()
                        .zip(self.storage.vals.as_slice()[r].iter().copied())
                })
                .peekable();
            let mut run_iter = run.iter().copied().peekable();
            loop {
                let take_run = match (ex_iter.peek(), run_iter.peek()) {
                    (Some(&(ek, _)), Some(&(rk, _))) => rk < ek,
                    (None, Some(_)) => true,
                    (Some(_), None) => false,
                    (None, None) => break,
                };
                let (k, v) = if take_run {
                    run_iter.next().expect("peeked")
                } else {
                    ex_iter.next().expect("peeked")
                };
                self.scratch_keys.push(k);
                self.scratch_vals.push(v);
            }
        }
        debug_assert_eq!(self.scratch_keys.len(), total);

        let first_slot = segs.start * b;
        let slots = m * b;
        let dst_ranges = window_layout(segs.start, b, &targets);
        let epp = self.storage.keys.elems_per_page();
        let rewire = matches!(
            self.cfg.rewiring,
            crate::config::RewiringMode::Enabled { .. }
        ) && first_slot.is_multiple_of(epp)
            && slots.is_multiple_of(epp)
            && slots >= epp;
        if rewire {
            self.stats.rewired_commits += 1;
            let (_, kbuf) = self.storage.keys.array_and_buffer_mut(slots);
            let mut cursor = 0usize;
            for dst in &dst_ranges {
                kbuf[dst.clone()].copy_from_slice(&self.scratch_keys[cursor..cursor + dst.len()]);
                cursor += dst.len();
            }
            self.storage.keys.commit_window_swap(first_slot, slots);
            let (_, vbuf) = self.storage.vals.array_and_buffer_mut(slots);
            let mut cursor = 0usize;
            for dst in &dst_ranges {
                vbuf[dst.clone()].copy_from_slice(&self.scratch_vals[cursor..cursor + dst.len()]);
                cursor += dst.len();
            }
            self.storage.vals.commit_window_swap(first_slot, slots);
        } else {
            self.stats.copied_commits += 1;
            let mut cursor = 0usize;
            for dst in &dst_ranges {
                let n = dst.len();
                self.storage.keys.as_mut_slice()[first_slot + dst.start..first_slot + dst.end]
                    .copy_from_slice(&self.scratch_keys[cursor..cursor + n]);
                self.storage.vals.as_mut_slice()[first_slot + dst.start..first_slot + dst.end]
                    .copy_from_slice(&self.scratch_vals[cursor..cursor + n]);
                cursor += n;
            }
        }
        for (i, s) in segs.clone().enumerate() {
            self.storage.cards[s] = targets[i] as u32;
        }
        self.refresh_separators(segs);
    }

    /// Fallback for batches that overflow the whole array: resize to a
    /// capacity that fits, then load normally.
    pub(crate) fn rebuild_with_batch(&mut self, batch: &[(Key, Value)]) {
        let b = self.cfg.segment_size;
        let needed = self.len + batch.len();
        let mut segs = self.storage.seg_count().max(1);
        loop {
            let height = if segs <= 1 {
                1
            } else {
                (usize::BITS - (segs - 1).leading_zeros()) as usize + 1
            };
            let root_max = self
                .cfg
                .thresholds
                .max_card(height, height, segs * b)
                .min(segs * (b - 1));
            if needed <= root_max {
                break;
            }
            segs *= 2;
        }
        self.stats.grows += 1;
        self.resize_to(segs);
        self.load_bulk(batch);
    }

    /// Deletion pass with rebalances disabled (§III, batch deletes).
    pub(crate) fn delete_pass(&mut self, deletes: &[Key]) -> usize {
        let mut removed = 0usize;
        for &k in deletes {
            let seg = self.index.search(k);
            let pos = self.storage.seg_lower_bound(seg, k);
            let keys = self.storage.seg_keys(seg);
            if pos < keys.len() && keys[pos] == k {
                self.storage.remove_from_segment(seg, pos);
                if pos == 0 && self.storage.card(seg) > 0 {
                    let new_min = self.storage.seg_min(seg);
                    self.index.update(seg, new_min);
                }
                self.len -= 1;
                removed += 1;
            }
        }
        removed
    }
}

/// Two-pointer merge of a segment's content with a batch run.
fn merge_into(
    seg_keys: &[Key],
    seg_vals: &[Value],
    run: &[(Key, Value)],
    out_keys: &mut Vec<Key>,
    out_vals: &mut Vec<Value>,
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < seg_keys.len() || j < run.len() {
        let take_run = j < run.len() && (i >= seg_keys.len() || run[j].0 < seg_keys[i]);
        if take_run {
            out_keys.push(run[j].0);
            out_vals.push(run[j].1);
            j += 1;
        } else {
            out_keys.push(seg_keys[i]);
            out_vals.push(seg_vals[i]);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{RewiringMode, RmaConfig};
    use crate::rma::Rma;

    fn cfg() -> RmaConfig {
        RmaConfig {
            segment_size: 8,
            rewiring: RewiringMode::Disabled,
            adaptive: None,
            reserve_bytes: 1 << 26,
            ..Default::default()
        }
    }

    fn rewired_cfg() -> RmaConfig {
        RmaConfig {
            segment_size: 16,
            rewiring: RewiringMode::Enabled { page_bytes: 4096 },
            adaptive: None,
            reserve_bytes: 1 << 26,
            ..Default::default()
        }
    }

    #[test]
    fn bulk_load_into_empty() {
        let mut r = Rma::new(cfg());
        let batch: Vec<(i64, i64)> = (0..1000).map(|i| (i * 2, i)).collect();
        r.load_bulk(&batch);
        r.check_invariants();
        assert_eq!(r.len(), 1000);
        let got: Vec<(i64, i64)> = r.iter().collect();
        assert_eq!(got, batch);
    }

    #[test]
    fn bulk_load_matches_individual_inserts() {
        let mut bulk = Rma::new(cfg());
        let mut single = Rma::new(cfg());
        // Pre-populate both identically.
        let base: Vec<(i64, i64)> = (0..2000).map(|i| (i * 3, i)).collect();
        bulk.load_bulk(&base);
        for &(k, v) in &base {
            single.insert(k, v);
        }
        // Batch of interleaved keys.
        let mut batch: Vec<(i64, i64)> = (0..500).map(|i| (i * 11 + 1, -i)).collect();
        batch.sort_unstable();
        bulk.load_bulk(&batch);
        for &(k, v) in &batch {
            single.insert(k, v);
        }
        bulk.check_invariants();
        let a: Vec<(i64, i64)> = bulk.iter().collect();
        let mut want: Vec<(i64, i64)> = base.iter().chain(batch.iter()).copied().collect();
        want.sort_unstable();
        let b_sorted: Vec<(i64, i64)> = single.iter().collect();
        // Key order must match exactly; value order among equal keys
        // may differ between the two code paths.
        assert_eq!(
            a.iter().map(|p| p.0).collect::<Vec<_>>(),
            want.iter().map(|p| p.0).collect::<Vec<_>>()
        );
        assert_eq!(a.len(), b_sorted.len());
    }

    #[test]
    fn top_down_produces_same_content() {
        let base: Vec<(i64, i64)> = (0..3000).map(|i| (i * 5, i)).collect();
        let batch: Vec<(i64, i64)> = (0..800).map(|i| (i * 17 + 2, -i)).collect();
        let mut bu = Rma::new(cfg());
        bu.load_bulk(&base);
        bu.load_bulk(&batch);
        let mut td = Rma::new(cfg());
        td.load_bulk(&base);
        td.load_bulk_top_down(&batch);
        td.check_invariants();
        assert_eq!(
            bu.iter().map(|p| p.0).collect::<Vec<_>>(),
            td.iter().map(|p| p.0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn repeated_batches_grow_structure() {
        let mut r = Rma::new(cfg());
        for round in 0..50i64 {
            let batch: Vec<(i64, i64)> = (0..200).map(|i| (round * 200 + i, round)).collect();
            r.load_bulk(&batch);
        }
        r.check_invariants();
        assert_eq!(r.len(), 10_000);
        assert!(r.stats().grows > 0);
    }

    #[test]
    fn bulk_load_rewired_path() {
        let mut r = Rma::new(rewired_cfg());
        for round in 0..20i64 {
            let mut batch: Vec<(i64, i64)> = (0..500)
                .map(|i| ((round * 500 + i) * 48271 % 1_000_000, i))
                .collect();
            batch.sort_unstable();
            r.load_bulk(&batch);
        }
        r.check_invariants();
        assert_eq!(r.len(), 10_000);
        let keys: Vec<i64> = r.iter().map(|(k, _)| k).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn batch_with_deletions_keeps_cardinality() {
        let mut r = Rma::new(cfg());
        let base: Vec<(i64, i64)> = (0..5000).map(|i| (i, i)).collect();
        r.load_bulk(&base);
        // Delete 1000 even keys, insert 1000 fresh keys.
        let deletes: Vec<i64> = (0..1000).map(|i| i * 2).collect();
        let inserts: Vec<(i64, i64)> = (0..1000).map(|i| (10_000 + i, i)).collect();
        let deleted = r.apply_batch(&inserts, &deletes);
        assert_eq!(deleted, 1000);
        r.check_invariants();
        assert_eq!(r.len(), 5000);
        assert_eq!(r.get(0), None);
        assert_eq!(r.get(1), Some(1));
        assert_eq!(r.get(10_500), Some(500));
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut r = Rma::new(cfg());
        r.insert(1, 1);
        r.load_bulk(&[]);
        r.load_bulk_top_down(&[]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn batch_of_duplicates() {
        let mut r = Rma::new(cfg());
        let batch: Vec<(i64, i64)> = (0..500).map(|i| (42, i)).collect();
        r.load_bulk(&batch);
        r.check_invariants();
        assert_eq!(r.len(), 500);
        assert!(r.iter().all(|(k, _)| k == 42));
    }

    #[test]
    fn huge_batch_triggers_rebuild() {
        let mut r = Rma::new(cfg());
        r.insert(0, 0);
        let batch: Vec<(i64, i64)> = (1..20_000).map(|i| (i, i)).collect();
        r.load_bulk(&batch);
        r.check_invariants();
        assert_eq!(r.len(), 20_000);
    }
}
