//! Density thresholds of the calibrator tree (§II "Density
//! thresholds", §III "Scan-oriented thresholds").
//!
//! The calibrator tree has `h` levels; level 1 is a single segment,
//! level `h` covers the whole array. Each level has a lower `ρ_l` and
//! an upper `τ_l` density bound, interpolated arithmetically between
//! the four designer-chosen extremes `ρ₁, ρ_h, τ_h, τ₁` with
//! `0 ≤ ρ₁ < ρ_h ≤ τ_h < τ₁ ≤ 1`.
//!
//! Two presets follow the paper:
//! * **update-oriented** (`ρ₁=0.08, ρ_h=0.3, τ_h=0.75, τ₁=1`): looser
//!   constraints, fewer rebalances, capacity doubles/halves on resize;
//! * **scan-oriented** (`ρ₁=0, ρ_h=τ_h=0.75, τ₁=1`): array kept ~75%
//!   full, capacity set to `2N/(τ_h+ρ_h)` on resize, plus a forced
//!   shrink when the fill factor drops below 50%.

/// How the array capacity changes when a resize is unavoidable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizePolicy {
    /// Capacity doubles on growth and halves on shrink (the paper's
    /// first strategy; favours updates).
    Double,
    /// Capacity becomes `2N / (τ_h + ρ_h)` (the paper's second
    /// strategy; favours scans). A fill factor below 50% forces a
    /// shrink.
    Proportional,
}

/// The four threshold extremes plus the resize policy.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// Lower density bound at the segment level.
    pub rho_1: f64,
    /// Lower density bound at the root level.
    pub rho_h: f64,
    /// Upper density bound at the root level.
    pub tau_h: f64,
    /// Upper density bound at the segment level (1.0 in the RMA:
    /// segments fill completely before triggering a rebalance).
    pub tau_1: f64,
    /// Resize strategy tied to the preset.
    pub policy: ResizePolicy,
}

impl Thresholds {
    /// The paper's update-oriented preset (UT), also the default used
    /// in most of its experiments.
    pub fn update_oriented() -> Self {
        Thresholds {
            rho_1: 0.08,
            rho_h: 0.3,
            tau_h: 0.75,
            tau_1: 1.0,
            policy: ResizePolicy::Double,
        }
    }

    /// The paper's scan-oriented preset (ST) from §III.
    pub fn scan_oriented() -> Self {
        Thresholds {
            rho_1: 0.0,
            rho_h: 0.75,
            tau_h: 0.75,
            tau_1: 1.0,
            policy: ResizePolicy::Proportional,
        }
    }

    /// Validates the designer ordering `0 ≤ ρ₁ < ρ_h ≤ τ_h < τ₁ ≤ 1`
    /// (with `ρ₁ = ρ_h` tolerated for degenerate configurations).
    /// Panicking form of [`try_validate`](Self::try_validate).
    pub fn validate(&self) {
        if let Err(reason) = self.try_validate() {
            panic!("{reason}");
        }
    }

    /// Checks the designer ordering without panicking, returning the
    /// violated rule so construction-time validators can surface a
    /// typed error instead of aborting deep inside a constructor.
    pub fn try_validate(&self) -> Result<(), &'static str> {
        if !(self.rho_1 >= 0.0 && self.tau_1 <= 1.0) {
            return Err("thresholds out of [0,1]");
        }
        if self.rho_1 > self.rho_h {
            return Err("rho_1 must be <= rho_h");
        }
        if self.rho_h > self.tau_h {
            return Err("rho_h must be <= tau_h");
        }
        if self.tau_h >= self.tau_1 {
            return Err("tau_h must be < tau_1");
        }
        if self.policy == ResizePolicy::Double && 2.0 * self.rho_h > self.tau_h {
            return Err("doubling requires 2*rho_h <= tau_h for consistency");
        }
        Ok(())
    }

    /// Upper density bound at `level` (1-based) of a calibrator tree
    /// of height `height`.
    #[inline]
    pub fn tau(&self, level: usize, height: usize) -> f64 {
        debug_assert!(level >= 1 && level <= height);
        if height <= 1 {
            return self.tau_1;
        }
        let t = (level - 1) as f64 / (height - 1) as f64;
        self.tau_1 + t * (self.tau_h - self.tau_1)
    }

    /// Lower density bound at `level` (1-based).
    #[inline]
    pub fn rho(&self, level: usize, height: usize) -> f64 {
        debug_assert!(level >= 1 && level <= height);
        if height <= 1 {
            return self.rho_1;
        }
        let t = (level - 1) as f64 / (height - 1) as f64;
        self.rho_1 + t * (self.rho_h - self.rho_1)
    }

    /// Maximum cardinality a window of `cap` slots tolerates at
    /// `level` before it must spill to the parent window.
    #[inline]
    pub fn max_card(&self, level: usize, height: usize, cap: usize) -> usize {
        (self.tau(level, height) * cap as f64).floor() as usize
    }

    /// Minimum cardinality a window of `cap` slots tolerates.
    #[inline]
    pub fn min_card(&self, level: usize, height: usize, cap: usize) -> usize {
        (self.rho(level, height) * cap as f64).ceil() as usize
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds::update_oriented()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        Thresholds::update_oriented().validate();
        Thresholds::scan_oriented().validate();
    }

    #[test]
    fn interpolation_hits_extremes() {
        let t = Thresholds::update_oriented();
        let h = 10;
        assert!((t.tau(1, h) - 1.0).abs() < 1e-12);
        assert!((t.tau(h, h) - 0.75).abs() < 1e-12);
        assert!((t.rho(1, h) - 0.08).abs() < 1e-12);
        assert!((t.rho(h, h) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn tau_decreases_rho_increases_with_level() {
        let t = Thresholds::update_oriented();
        let h = 8;
        for l in 1..h {
            assert!(t.tau(l, h) >= t.tau(l + 1, h));
            assert!(t.rho(l, h) <= t.rho(l + 1, h));
        }
    }

    #[test]
    fn rho_stays_below_tau_at_every_level() {
        for t in [Thresholds::update_oriented(), Thresholds::scan_oriented()] {
            for h in 1..20 {
                for l in 1..=h {
                    assert!(t.rho(l, h) <= t.tau(l, h), "h={h} l={l}");
                }
            }
        }
    }

    #[test]
    fn card_bounds_round_conservatively() {
        let t = Thresholds::update_oriented();
        // At root level with cap 100: tau=0.75 -> 75, rho=0.3 -> 30.
        assert_eq!(t.max_card(5, 5, 100), 75);
        assert_eq!(t.min_card(5, 5, 100), 30);
        // Segment level: tau_1 = 1.0 -> the full segment.
        assert_eq!(t.max_card(1, 5, 128), 128);
    }

    #[test]
    fn single_level_tree_uses_leaf_values() {
        let t = Thresholds::update_oriented();
        assert_eq!(t.tau(1, 1), 1.0);
        assert_eq!(t.rho(1, 1), 0.08);
    }

    #[test]
    #[should_panic(expected = "tau_h must be < tau_1")]
    fn invalid_ordering_panics() {
        Thresholds {
            rho_1: 0.1,
            rho_h: 0.3,
            tau_h: 1.0,
            tau_1: 1.0,
            policy: ResizePolicy::Double,
        }
        .validate();
    }
}
