//! The static index (§III "Index", Fig. 5).
//!
//! A pointer-eliminated B+-tree over the segment minima of the RMA:
//!
//! * built once per resize for a fixed number of segments — hence
//!   *static*: the shape never changes between resizes;
//! * separator keys are packed in one contiguous array; node traversal
//!   needs no per-child pointers, only each node's first-child offset
//!   (children are allocated contiguously, breadth-first);
//! * every segment `s ≥ 1` contributes exactly one separator (its
//!   minimum key) stored in exactly one node, so updating a separator
//!   during a rebalance is a single O(1) array write
//!   ([`StaticIndex::update`]).
//!
//! Following the paper's structure, a node has at most `f - 1`
//! separators and `f` children; the leftmost children of the root are
//! full subtrees and the rightmost child is a (possibly smaller)
//! partial subtree.

use crate::Key;

#[derive(Debug, Clone, Copy)]
struct NodeMeta {
    /// Offset of this node's separators in `keys`.
    key_off: u32,
    /// Number of separators in this node.
    nkeys: u16,
    /// If `leaf_children`: the first segment id; else the node id of
    /// the first child (children have consecutive ids).
    first_child: u32,
    /// True when children are segments of the RMA.
    leaf_children: bool,
}

/// Static, pointer-free index over segment minima.
#[derive(Debug)]
pub struct StaticIndex {
    #[allow(dead_code)] // retained for introspection/debugging
    fanout: usize,
    num_segments: usize,
    /// All separators, packed by node in breadth-first order.
    keys: Vec<Key>,
    nodes: Vec<NodeMeta>,
    /// Flat position in `keys` of the separator of segment `s` (undefined
    /// for segment 0, which has no separator).
    slot_of: Vec<u32>,
}

impl StaticIndex {
    /// Builds the index for segments whose minima are `minima`
    /// (`minima[s]` = separator for segment `s`; `minima[0]` is
    /// ignored). `fanout` is the maximum child count per node.
    pub fn build(minima: &[Key], fanout: usize) -> Self {
        assert!(fanout >= 2);
        let n = minima.len();
        assert!(n >= 1, "index needs at least one segment");
        let mut idx = StaticIndex {
            fanout,
            num_segments: n,
            keys: Vec::new(),
            nodes: Vec::new(),
            slot_of: vec![u32::MAX; n],
        };
        // Breadth-first construction: a queue of segment ranges, one
        // per pending node, so each node's children receive
        // consecutive node ids.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(0..n);
        while let Some(range) = queue.pop_front() {
            let count = range.len();
            let key_off = idx.keys.len() as u32;
            if count <= fanout {
                // Children are segments.
                #[allow(clippy::needless_range_loop)] // s is a segment id
                for s in range.start + 1..range.end {
                    idx.slot_of[s] = idx.keys.len() as u32;
                    idx.keys.push(minima[s]);
                }
                idx.nodes.push(NodeMeta {
                    key_off,
                    nkeys: (count - 1) as u16,
                    first_child: range.start as u32,
                    leaf_children: true,
                });
                continue;
            }
            // Children are subtrees of `chunk` segments each: the
            // largest power of `fanout` below `count` (full subtrees),
            // with a partial final child for the remainder.
            let mut chunk = fanout;
            while chunk * fanout < count {
                chunk *= fanout;
            }
            let first_child = (idx.nodes.len() + 1 + queue.len()) as u32;
            let mut boundaries = 0u16;
            let mut s = range.start;
            while s < range.end {
                let end = (s + chunk).min(range.end);
                if s > range.start {
                    idx.slot_of[s] = idx.keys.len() as u32;
                    idx.keys.push(minima[s]);
                    boundaries += 1;
                }
                queue.push_back(s..end);
                s = end;
            }
            idx.nodes.push(NodeMeta {
                key_off,
                nkeys: boundaries,
                first_child,
                leaf_children: false,
            });
        }
        idx
    }

    /// Number of indexed segments.
    pub fn num_segments(&self) -> usize {
        self.num_segments
    }

    /// The segment whose key range contains `k`: the rightmost segment
    /// with separator `≤ k` (segment 0 when `k` precedes every
    /// separator). Equal keys route right, matching the storage's
    /// insertion convention.
    #[inline]
    pub fn search(&self, k: Key) -> usize {
        let mut node = &self.nodes[0];
        loop {
            let off = node.key_off as usize;
            let seps = &self.keys[off..off + node.nkeys as usize];
            let j = seps.partition_point(|&s| s <= k);
            let child = node.first_child as usize + j;
            if node.leaf_children {
                return child;
            }
            node = &self.nodes[child];
        }
    }

    /// The leftmost segment that can contain an element `>= k`: the
    /// segment after all separators `< k`. Every element of earlier
    /// segments is bounded by such a separator, hence strictly below
    /// `k` — use this for lower-bound scans so duplicate runs spanning
    /// segments are never skipped.
    #[inline]
    pub fn search_lower_bound(&self, k: Key) -> usize {
        let mut node = &self.nodes[0];
        loop {
            let off = node.key_off as usize;
            let seps = &self.keys[off..off + node.nkeys as usize];
            let j = seps.partition_point(|&s| s < k);
            let child = node.first_child as usize + j;
            if node.leaf_children {
                return child;
            }
            node = &self.nodes[child];
        }
    }

    /// O(1) update of the separator of segment `seg` (1-based
    /// segments; segment 0 has no separator and is ignored).
    #[inline]
    pub fn update(&mut self, seg: usize, new_sep: Key) {
        if seg == 0 {
            return;
        }
        let slot = self.slot_of[seg];
        self.keys[slot as usize] = new_sep;
    }

    /// Current separator of segment `seg` (`None` for segment 0).
    pub fn separator(&self, seg: usize) -> Option<Key> {
        if seg == 0 {
            return None;
        }
        Some(self.keys[self.slot_of[seg] as usize])
    }

    /// Resident bytes of the index.
    pub fn memory_footprint(&self) -> usize {
        self.keys.capacity() * 8
            + self.nodes.capacity() * std::mem::size_of::<NodeMeta>()
            + self.slot_of.capacity() * 4
    }

    /// Test helper: asserts the index routes exactly like a flat
    /// binary search over the separator list.
    pub fn check_against(&self, minima: &[Key]) {
        assert_eq!(minima.len(), self.num_segments);
        for (s, &m) in minima.iter().enumerate().skip(1) {
            assert_eq!(self.separator(s), Some(m), "separator {s}");
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // loop variables are segment ids
mod tests {
    use super::*;

    /// Reference: rightmost segment whose separator is <= k.
    fn reference_search(minima: &[Key], k: Key) -> usize {
        minima[1..].partition_point(|&m| m <= k)
    }

    fn probe_all(minima: &[Key], fanout: usize) {
        let idx = StaticIndex::build(minima, fanout);
        idx.check_against(minima);
        for probe in -2..(minima.len() as i64 * 10 + 2) {
            assert_eq!(
                idx.search(probe),
                reference_search(minima, probe),
                "n={} f={fanout} probe={probe}",
                minima.len()
            );
        }
    }

    #[test]
    fn single_segment_routes_everything_to_zero() {
        let idx = StaticIndex::build(&[0], 64);
        assert_eq!(idx.search(i64::MIN), 0);
        assert_eq!(idx.search(i64::MAX), 0);
        assert_eq!(idx.separator(0), None);
    }

    #[test]
    fn search_matches_reference_at_many_shapes() {
        for f in [2, 3, 4, 64] {
            for n in [
                1usize, 2, 3, 4, 5, 8, 9, 16, 17, 63, 64, 65, 100, 256, 257, 1000,
            ] {
                let minima: Vec<Key> = (0..n as i64).map(|i| i * 10).collect();
                probe_all(&minima, f);
            }
        }
    }

    #[test]
    fn search_lower_bound_matches_flat_partition() {
        for f in [2, 3, 64] {
            for n in [1usize, 2, 5, 9, 64, 65, 257] {
                // Duplicate separators stress the leftmost bias.
                let minima: Vec<Key> = (0..n as i64).map(|i| (i / 3) * 10).collect();
                let idx = StaticIndex::build(&minima, f);
                for probe in -2..(n as i64 * 4 + 2) {
                    let want = minima[1..].partition_point(|&m| m < probe);
                    assert_eq!(
                        idx.search_lower_bound(probe),
                        want,
                        "n={n} f={f} probe={probe}"
                    );
                }
            }
        }
    }

    #[test]
    fn update_is_visible_to_search() {
        let minima: Vec<Key> = (0..100).map(|i| i * 10).collect();
        let mut idx = StaticIndex::build(&minima, 4);
        // Move segment 50's separator from 500 to 505.
        idx.update(50, 505);
        assert_eq!(idx.search(504), 49);
        assert_eq!(idx.search(505), 50);
        assert_eq!(idx.separator(50), Some(505));
    }

    #[test]
    fn update_every_separator() {
        let minima: Vec<Key> = (0..333).map(|i| i * 2).collect();
        let mut idx = StaticIndex::build(&minima, 64);
        let shifted: Vec<Key> = minima.iter().map(|m| m + 1).collect();
        for s in 1..shifted.len() {
            idx.update(s, shifted[s]);
        }
        idx.check_against(&shifted);
        for probe in 0..700 {
            assert_eq!(idx.search(probe), reference_search(&shifted, probe));
        }
    }

    #[test]
    fn duplicate_separators_route_right() {
        // Empty segments inherit the next minimum, creating duplicate
        // separators; equal keys must land in the rightmost segment.
        let minima: Vec<Key> = vec![0, 10, 10, 10, 20];
        let idx = StaticIndex::build(&minima, 2);
        assert_eq!(idx.search(10), 3);
        assert_eq!(idx.search(9), 0);
        assert_eq!(idx.search(15), 3);
        assert_eq!(idx.search(20), 4);
    }

    #[test]
    fn update_of_segment_zero_is_ignored() {
        let minima: Vec<Key> = vec![0, 10];
        let mut idx = StaticIndex::build(&minima, 64);
        idx.update(0, 999);
        assert_eq!(idx.search(5), 0);
    }

    #[test]
    fn footprint_scales_with_segments() {
        let small = StaticIndex::build(&(0..10i64).collect::<Vec<_>>(), 64);
        let large = StaticIndex::build(&(0..10_000i64).collect::<Vec<_>>(), 64);
        assert!(large.memory_footprint() > small.memory_footprint() * 100);
    }
}
