//! Operational counters of the RMA, used by the experiment drivers to
//! report rebalance behaviour (§V "costs of rebalances").

/// Cumulative statistics; all counters are since construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct RmaStats {
    /// Window rebalances executed (excluding resizes).
    pub rebalances: u64,
    /// Rebalances that used the adaptive algorithm (marked intervals
    /// were present).
    pub adaptive_rebalances: u64,
    /// Resizes that grew the array.
    pub grows: u64,
    /// Resizes that shrank the array.
    pub shrinks: u64,
    /// Elements copied during rebalances and resizes.
    pub elements_moved: u64,
    /// Rebalances/resizes that committed through page rewiring.
    pub rewired_commits: u64,
    /// Rebalances/resizes that fell back to the copy path.
    pub copied_commits: u64,
}

impl RmaStats {
    /// Total structural reorganisations.
    pub fn reorganisations(&self) -> u64 {
        self.rebalances + self.grows + self.shrinks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorganisations_sums_counters() {
        let s = RmaStats {
            rebalances: 3,
            grows: 2,
            shrinks: 1,
            ..Default::default()
        };
        assert_eq!(s.reorganisations(), 6);
    }
}
