//! Criterion micro-benchmarks for the core operations of every
//! structure in the reproduction. The figure-level experiments live in
//! `src/bin/` (one driver per paper figure); these benches measure the
//! primitive costs — insert, point lookup, range scan, Zipf sampling,
//! rebalancing primitives — with statistical rigour.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use abtree::{AbTree, AbTreeConfig, DenseArray};
use art::ArtTree;
use pma_baseline::{Tpma, TpmaConfig};
use rma_core::{Rma, RmaConfig};
use workloads::{KeyStream, Pattern, SplitMix64, Zipf};

const N: usize = 1 << 16;

fn pairs(n: usize) -> Vec<(i64, i64)> {
    KeyStream::new(Pattern::Uniform, 42).take_pairs(n)
}

fn bench_inserts(c: &mut Criterion) {
    let data = pairs(N);
    let mut g = c.benchmark_group("insert_uniform");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    g.bench_function("rma_b128", |b| {
        b.iter(|| {
            let mut s = Rma::new(RmaConfig::with_segment_size(128));
            for &(k, v) in &data {
                s.insert(k, v);
            }
            black_box(s.len())
        })
    });
    g.bench_function("rma_plain_b128", |b| {
        b.iter(|| {
            let mut s = Rma::new(RmaConfig::with_segment_size(128).plain());
            for &(k, v) in &data {
                s.insert(k, v);
            }
            black_box(s.len())
        })
    });
    g.bench_function("abtree_b128", |b| {
        b.iter(|| {
            let mut s = AbTree::new(AbTreeConfig::with_leaf_capacity(128));
            for &(k, v) in &data {
                s.insert(k, v);
            }
            black_box(s.len())
        })
    });
    g.bench_function("art_b128", |b| {
        b.iter(|| {
            let mut s = ArtTree::new(128);
            for &(k, v) in &data {
                s.insert(k, v);
            }
            black_box(s.len())
        })
    });
    g.bench_function("tpma", |b| {
        b.iter(|| {
            let mut s = Tpma::new(TpmaConfig::traditional());
            for &(k, v) in &data {
                s.insert(k, v);
            }
            black_box(s.len())
        })
    });
    g.finish();
}

fn bench_lookups(c: &mut Criterion) {
    let data = pairs(N);
    let mut rma = Rma::new(RmaConfig::with_segment_size(128));
    let mut tree = AbTree::new(AbTreeConfig::with_leaf_capacity(128));
    let mut art = ArtTree::new(128);
    for &(k, v) in &data {
        rma.insert(k, v);
        tree.insert(k, v);
        art.insert(k, v);
    }
    let probes: Vec<i64> = {
        let mut rng = SplitMix64::new(7);
        (0..1024)
            .map(|_| data[rng.next_below(N as u64) as usize].0)
            .collect()
    };
    let mut g = c.benchmark_group("point_lookup");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("rma_b128", |b| {
        b.iter(|| probes.iter().map(|&k| rma.get(k).unwrap()).sum::<i64>())
    });
    g.bench_function("abtree_b128", |b| {
        b.iter(|| probes.iter().map(|&k| tree.get(k).unwrap()).sum::<i64>())
    });
    g.bench_function("art_b128", |b| {
        b.iter(|| probes.iter().map(|&k| art.get(k).unwrap()).sum::<i64>())
    });
    g.finish();
}

fn bench_scans(c: &mut Criterion) {
    let data = pairs(N);
    let mut rma = Rma::new(RmaConfig::with_segment_size(128));
    let mut tree = AbTree::new(AbTreeConfig::with_leaf_capacity(128));
    let mut tpma = Tpma::new(TpmaConfig::traditional());
    for &(k, v) in &data {
        rma.insert(k, v);
        tree.insert(k, v);
        tpma.insert(k, v);
    }
    let mut sorted = data.clone();
    sorted.sort_unstable();
    let dense = DenseArray::from_sorted(&sorted);

    let mut g = c.benchmark_group("full_scan");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("rma_b128", |b| {
        b.iter(|| black_box(rma.sum_range(i64::MIN, N)))
    });
    g.bench_function("abtree_b128", |b| {
        b.iter(|| black_box(tree.sum_range(i64::MIN, N)))
    });
    g.bench_function("tpma_interleaved", |b| {
        b.iter(|| black_box(tpma.sum_range(i64::MIN, N)))
    });
    g.bench_function("dense_array", |b| {
        b.iter(|| black_box(dense.sum_range(i64::MIN, N)))
    });
    g.finish();
}

fn bench_bulk_load(c: &mut Criterion) {
    let base = {
        let mut p = pairs(N);
        p.sort_unstable();
        p
    };
    let batch = {
        let mut p = KeyStream::new(Pattern::Uniform, 77).take_pairs(N / 64);
        p.sort_unstable();
        p
    };
    let mut g = c.benchmark_group("bulk_load_1.5pct");
    g.throughput(Throughput::Elements(batch.len() as u64));
    g.sample_size(10);
    for (name, top_down) in [("bottom_up", false), ("top_down", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &top_down, |b, &td| {
            b.iter_batched(
                || {
                    let mut r = Rma::new(RmaConfig::with_segment_size(128));
                    r.load_bulk(&base);
                    r
                },
                |mut r| {
                    if td {
                        r.load_bulk_top_down(&batch);
                    } else {
                        r.load_bulk(&batch);
                    }
                    black_box(r.len())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let mut g = c.benchmark_group("zipf_sampler");
    g.throughput(Throughput::Elements(1024));
    for alpha in [0.5, 1.0, 2.0] {
        g.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &a| {
            let mut z = Zipf::new(1 << 27, a);
            let mut rng = SplitMix64::new(3);
            b.iter(|| (0..1024).map(|_| z.sample(&mut rng)).sum::<u64>())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_inserts,
    bench_lookups,
    bench_scans,
    bench_bulk_load,
    bench_zipf
);
criterion_main!(benches);
