//! Measurement utilities shared by the experiment drivers.
//!
//! One binary per figure of "Packed Memory Arrays – Rewired" lives in
//! `src/bin/`; each prints the rows/series of its figure in plain
//! text. This library provides the shared plumbing: wall-clock
//! timing, median-of-repetitions, throughput formatting, latency
//! percentiles, and a tiny CLI argument parser so every driver accepts
//! `--scale`, `--reps`, `--seed` and `--seg` without a dependency.

use std::time::Instant;

/// Times `f`, returning (result, seconds).
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Runs `f` `reps` times and returns the median of the sampled
/// values, matching the paper's statistic ("the reported results
/// refer to the median").
pub fn median_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    assert!(reps >= 1);
    let mut xs: Vec<f64> = (0..reps).map(|_| f()).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    xs[xs.len() / 2]
}

/// Elements per second, as "3.25M/s"-style text.
pub fn fmt_throughput(elements: usize, seconds: f64) -> String {
    let eps = elements as f64 / seconds.max(1e-12);
    if eps >= 1e9 {
        format!("{:7.2}G/s", eps / 1e9)
    } else if eps >= 1e6 {
        format!("{:7.2}M/s", eps / 1e6)
    } else if eps >= 1e3 {
        format!("{:7.2}K/s", eps / 1e3)
    } else {
        format!("{eps:7.0}/s")
    }
}

/// Raw elements/second.
pub fn throughput(elements: usize, seconds: f64) -> f64 {
    elements as f64 / seconds.max(1e-12)
}

/// Bytes as a human-readable quantity.
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut x = bytes as f64;
    let mut u = 0;
    while x >= 1024.0 && u < UNITS.len() - 1 {
        x /= 1024.0;
        u += 1;
    }
    format!("{:.2} {}", x, UNITS[u])
}

/// Streaming latency reservoir: per-op durations in nanoseconds go
/// into the shared [`rma_obs::Histogram`] and come back out as
/// percentiles (§V "costs of rebalances") — the same quantile
/// implementation `Db::metrics()` reports, so driver output and
/// production metrics agree. Quantiles carry the histogram's ≤ 1/16
/// relative bucket error; `max` stays exact. O(1) memory regardless
/// of sample count.
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    hist: rma_obs::Histogram,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample in nanoseconds.
    #[inline]
    pub fn record(&mut self, nanos: u64) {
        self.hist.record(nanos);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.hist.count() as usize
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.hist.is_empty()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) in nanoseconds.
    pub fn quantile(&mut self, q: f64) -> u64 {
        assert!(!self.is_empty());
        self.hist.snapshot().quantile(q)
    }

    /// The maximum sample in nanoseconds (exact).
    pub fn max(&self) -> u64 {
        self.hist.snapshot().max()
    }
}

/// Minimal CLI options shared by every driver.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Number of elements for the main phase (paper: 2^30; default
    /// here: 2^20 so a full figure regenerates in minutes — override
    /// with `--scale`).
    pub scale: usize,
    /// Repetitions per measurement (median reported).
    pub reps: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Segment/leaf capacity `B` where the driver does not sweep it.
    pub seg: usize,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: 1 << 20,
            reps: 3,
            seed: 42,
            seg: 128,
        }
    }
}

impl Cli {
    /// Parses `--scale N`, `--reps N`, `--seed N`, `--seg N` from the
    /// process arguments. Accepts suffixes `k`/`m`/`g` on `--scale`.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut cli = Cli::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut grab = || {
                it.next()
                    .unwrap_or_else(|| panic!("missing value after {arg}"))
            };
            match arg.as_str() {
                "--scale" => cli.scale = parse_scale(&grab()),
                "--reps" => cli.reps = grab().parse().expect("bad --reps"),
                "--seed" => cli.seed = grab().parse().expect("bad --seed"),
                "--seg" => cli.seg = grab().parse().expect("bad --seg"),
                "--help" | "-h" => {
                    eprintln!("options: --scale N[k|m|g]  --reps N  --seed N  --seg N");
                    std::process::exit(0);
                }
                other => panic!("unknown option {other}"),
            }
        }
        cli
    }
}

/// Parses "4m", "512k", "1g" or plain integers.
pub fn parse_scale(s: &str) -> usize {
    let lower = s.to_ascii_lowercase();
    let (digits, mult) = match lower.strip_suffix(['k', 'm', 'g']) {
        Some(d) => {
            let mult = match lower.as_bytes()[lower.len() - 1] {
                b'k' => 1usize << 10,
                b'm' => 1 << 20,
                _ => 1 << 30,
            };
            (d, mult)
        }
        None => (lower.as_str(), 1),
    };
    digits.parse::<usize>().expect("bad scale") * mult
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scale_suffixes() {
        assert_eq!(parse_scale("1k"), 1024);
        assert_eq!(parse_scale("4m"), 4 << 20);
        assert_eq!(parse_scale("1g"), 1 << 30);
        assert_eq!(parse_scale("12345"), 12345);
    }

    #[test]
    fn cli_parses_options() {
        let cli = Cli::parse_from(
            [
                "--scale", "2m", "--reps", "5", "--seed", "7", "--seg", "256",
            ]
            .into_iter()
            .map(String::from),
        );
        assert_eq!(cli.scale, 2 << 20);
        assert_eq!(cli.reps, 5);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.seg, 256);
    }

    #[test]
    fn median_is_order_insensitive() {
        let mut vals = vec![5.0, 1.0, 3.0].into_iter();
        let m = median_of(3, || vals.next().unwrap());
        assert_eq!(m, 3.0);
    }

    #[test]
    fn latency_percentiles() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100 {
            r.record(i);
        }
        assert_eq!(r.quantile(0.0), 1);
        assert_eq!(r.quantile(1.0), 100, "top quantile is the exact max");
        // Interior quantiles carry the histogram's bucket error.
        let p99 = r.quantile(0.99);
        assert!((93..=99).contains(&p99), "p99 {p99} off by > 1/16");
        assert_eq!(r.max(), 100);
        assert_eq!(r.len(), 100);
    }

    #[test]
    fn formatting_is_stable() {
        assert!(fmt_throughput(1_000_000, 1.0).contains("M/s"));
        assert!(fmt_bytes(3 << 20).contains("MiB"));
        assert!(throughput(100, 2.0) - 50.0 < 1e-9);
    }
}

pub mod stores;

/// Random scan-start key for a pattern's key domain.
pub fn random_start_key(pattern: workloads::Pattern, rng: &mut workloads::SplitMix64) -> i64 {
    match pattern {
        workloads::Pattern::Uniform => (rng.next_u64() >> 2) as i64,
        workloads::Pattern::Zipf { beta, .. } => rng.next_range(1, beta + 1) as i64,
        workloads::Pattern::Sequential => rng.next_u64() as i64 & i64::MAX,
    }
}

/// Zipf range β scaled like the paper (β = 2^27 at N = 2^30).
pub fn zipf_beta(scale: usize) -> u64 {
    ((scale / 8).max(1024)) as u64
}
