//! Figure 21 (beyond the paper) — the price of durability.
//!
//! PR 8 adds the durability subsystem: group-committed per-partition
//! write-ahead logs behind [`rma_db::DbBuilder::durability`], checkpoints
//! sealed by the maintenance engine, and parallel crash recovery.
//! This driver answers the two questions that decide whether anyone
//! turns it on:
//!
//! 1. **What does durable ingest cost?** An identical pipelined
//!    insert stream (uniform random keys over the full 62-bit domain,
//!    so every durability partition carries traffic) is driven
//!    against three configurations of the same preloaded database:
//!    `off` (no WAL), `group_commit` ([`CommitPolicy::Always`] — the
//!    router's per-chunk barrier makes that one fsync per submitted
//!    batch, the classic group commit), and `every_4096`
//!    ([`CommitPolicy::EveryN`] — fsync deferred until ≥ 4096 records
//!    since the last sync; bounded-loss on OS crash). Segments are
//!    measured back to back in rotating order so host jitter cancels
//!    in the per-segment ratios (same pairing methodology as
//!    `fig20_obs_overhead`).
//! 2. **How fast is recovery?** After the measured run, the
//!    group-commit database seals a checkpoint wave, ingests a log
//!    tail of 65 536 more inserts, and is dropped mid-flight; the
//!    timed region is `DbBuilder::recover()` — manifest read,
//!    parallel per-partition checkpoint load, bulk rebuild, and
//!    committed-tail replay — verified to reproduce the exact
//!    element count.
//!
//! The repository's acceptance bars: group-committed durable ingest ≥
//! **0.5×** durability-off at the default scale (2^20), and full
//! recovery ≤ **5 s** at 2^20.
//!
//! Writes `BENCH_durability.json`; schema in
//! `crates/bench-harness/README.md`.

use bench_harness::{fmt_throughput, median_of, throughput, time, Cli};
use rma_core::RmaConfig;
use rma_db::{CommitPolicy, Db, DurabilityConfig, Op, Ticket};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use workloads::SplitMix64;

const SHARDS: usize = 8;
/// Router workers. One on purpose: the driver host exposes a single
/// hardware thread, so extra workers only add scheduling noise to
/// the commit barrier — the group-commit batching this figure
/// measures happens at the worker's drain window, where one pass
/// executes every queued chunk and shares a single fsync round.
/// Both policies (and the off baseline) get the same fleet.
const WORKERS: usize = 1;
/// Ops per submitted batch — also the group-commit window: the
/// router's durability barrier runs once per chunk, so `Always`
/// costs one fsync per `BATCH` acknowledged inserts.
const BATCH: usize = 1024;
/// Tickets each session keeps in flight before collecting. Deep on
/// purpose: group commit amortizes one fsync round over everything
/// queued behind the barrier, so durable throughput scales with the
/// submission pipeline right up to the workers' drain window.
const DEPTH: usize = 32;
/// WAL partitions (fixed key-range stripes, decoupled from shards).
const PARTITIONS: usize = 4;
const EVERY_N: u64 = 4096;
const RATIO_BAR: f64 = 0.5;
const RECOVERY_BAR_SECS: f64 = 5.0;
/// Log tail replayed by the timed recovery.
const TAIL_OPS: usize = 1 << 16;
/// Measured segments per repetition (rotating-order pairing).
const SEGS_PER_REP: usize = 6;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Policy {
    Off,
    GroupCommit,
    EveryN,
}

impl Policy {
    fn label(self) -> &'static str {
        match self {
            Policy::Off => "off",
            Policy::GroupCommit => "group_commit",
            Policy::EveryN => "every_4096",
        }
    }

    fn commit(self) -> Option<CommitPolicy> {
        match self {
            Policy::Off => None,
            Policy::GroupCommit => Some(CommitPolicy::Always),
            Policy::EveryN => Some(CommitPolicy::EveryN(EVERY_N)),
        }
    }
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "rma-fig21-{}-{}-{tag}",
        std::process::id(),
        rewiring::monotonic_ns()
    ))
}

/// Builds one preloaded database under the given policy; durable
/// configurations log the preload through the WAL's bulk path so the
/// handle starts in the state a real durable deployment would.
fn preloaded(cli: &Cli, policy: Policy, dir: &Path) -> Db {
    let mut base: Vec<(i64, i64)> = {
        let mut rng = SplitMix64::new(cli.seed ^ 0xD07A_B1E5);
        (0..cli.scale)
            .map(|i| ((rng.next_u64() >> 2) as i64, i as i64))
            .collect()
    };
    base.sort_unstable();
    let mut builder = Db::builder()
        .shards(SHARDS)
        .router_workers(WORKERS)
        .rma(RmaConfig::with_segment_size(cli.seg));
    if let Some(commit) = policy.commit() {
        builder = builder.durability(
            DurabilityConfig::new(dir)
                .policy(commit)
                .partitions(PARTITIONS),
        );
    }
    builder
        .build_bulk(&base)
        .expect("static driver config is valid")
}

/// Pre-generates one insert segment, already cut into submission
/// batches, so generation cost stays outside the timed region and
/// every policy replays the identical stream.
fn make_segment(rng: &mut SplitMix64, ops: usize) -> Vec<Vec<Op>> {
    let mut batches = Vec::with_capacity(ops.div_ceil(BATCH));
    let mut remaining = ops;
    let mut v = 0i64;
    while remaining > 0 {
        let n = remaining.min(BATCH);
        batches.push(
            (0..n)
                .map(|_| {
                    v += 1;
                    Op::Insert((rng.next_u64() >> 2) as i64, v)
                })
                .collect(),
        );
        remaining -= n;
    }
    batches
}

/// Times one pipelined pass of a pre-generated segment. Returns
/// ops/second.
fn drive(db: &Db, segment: &[Vec<Op>]) -> f64 {
    let ops: usize = segment.iter().map(Vec::len).sum();
    let (_, secs) = time(|| {
        let mut session = db.session();
        let mut in_flight: VecDeque<Ticket> = VecDeque::new();
        for batch in segment {
            in_flight.push_back(session.submit(batch));
            if in_flight.len() >= DEPTH {
                let replies = in_flight.pop_front().expect("non-empty").wait();
                std::hint::black_box(replies.len());
            }
        }
        for ticket in in_flight {
            std::hint::black_box(ticket.wait().len());
        }
    });
    throughput(ops, secs)
}

struct PolicyResult {
    rate: f64,
    ratio_vs_off: f64,
}

struct Recovery {
    elements: usize,
    seconds: f64,
    checkpoints: usize,
}

fn main() {
    let cli = Cli::parse();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let policies = [Policy::Off, Policy::GroupCommit, Policy::EveryN];

    let dirs: Vec<PathBuf> = policies.iter().map(|p| scratch(p.label())).collect();
    let dbs: Vec<Db> = policies
        .iter()
        .zip(&dirs)
        .map(|(&p, dir)| preloaded(&cli, p, dir))
        .collect();
    let workers = dbs[0].stats().router.workers;

    println!(
        "# Fig. 21 — durability: N={} preloaded, N durable inserts, {SHARDS} shards, \
         {PARTITIONS} WAL partitions, {workers} router workers, batch {BATCH}, \
         depth {DEPTH}, B={}, hw_threads={hw}",
        cli.scale, cli.seg
    );
    println!("{:<14} {:>14} {:>10}", "policy", "inserts", "vs off");

    // Rotating-order paired segments: every segment is driven against
    // all three databases back to back, so frequency steps and
    // scheduler noise land on every side of most triples and the
    // median per-segment ratio isolates the WAL's cost.
    let mut rng = SplitMix64::new(cli.seed ^ 0x05EC_04D5);
    let segs = cli.reps.max(1) * SEGS_PER_REP;
    let seg_ops = (cli.scale / segs).max(BATCH * DEPTH * 2);

    let warm = make_segment(&mut rng, seg_ops);
    for db in &dbs {
        std::hint::black_box(drive(db, &warm));
    }

    let mut rates: Vec<Vec<f64>> = vec![Vec::with_capacity(segs); policies.len()];
    let mut ratios: Vec<Vec<f64>> = vec![Vec::with_capacity(segs); policies.len()];
    for seg in 0..segs {
        let segment = make_segment(&mut rng, seg_ops);
        let mut measured = [0.0f64; 3];
        for lane in 0..policies.len() {
            // Rotate the visit order so no policy always runs first.
            let i = (seg + lane) % policies.len();
            measured[i] = drive(&dbs[i], &segment);
        }
        for (i, &rate) in measured.iter().enumerate() {
            rates[i].push(rate);
            ratios[i].push(rate / measured[0]);
        }
    }
    let med = |xs: &[f64]| {
        let mut it = xs.iter().copied();
        median_of(xs.len(), move || it.next().expect("one value per seg"))
    };
    let results: Vec<(Policy, PolicyResult)> = policies
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let r = PolicyResult {
                rate: med(&rates[i]),
                ratio_vs_off: med(&ratios[i]),
            };
            println!(
                "{:<14} {:>14} {:>10.3}",
                p.label(),
                fmt_throughput(r.rate as usize, 1.0).trim(),
                r.ratio_vs_off
            );
            (p, r)
        })
        .collect();
    println!("# bar: group_commit/off >= {RATIO_BAR} (median of per-segment ratios)");

    // ------------------------------------------------- recovery ----
    // Seal a checkpoint wave on the group-commit database, ingest a
    // log tail past it, crash (drop), and time the full reopen.
    let group_db = &dbs[1];
    let mut plan = group_db.engine().plan_checkpoints();
    let report = group_db.engine().drain_plan(&mut plan);
    let tail = make_segment(&mut rng, TAIL_OPS);
    std::hint::black_box(drive(group_db, &tail));
    let expected_len = group_db.len();
    print!("{}", group_db.metrics());

    let dirs_to_drop = dirs.clone();
    drop(dbs);
    let group_dir = dirs_to_drop[1].clone();
    let (recovered, secs) = time(|| {
        Db::builder()
            .shards(SHARDS)
            .rma(RmaConfig::with_segment_size(cli.seg))
            .durability(DurabilityConfig::new(group_dir.clone()).policy(CommitPolicy::Always))
            .recover()
            .expect("recovery of a cleanly dropped WAL")
    });
    assert_eq!(
        recovered.len(),
        expected_len,
        "recovery must reproduce the exact element count"
    );
    let recovery = Recovery {
        elements: expected_len,
        seconds: secs,
        checkpoints: report.checkpoints,
    };
    println!(
        "# recovery: {} elements ({} checkpoint seals, {TAIL_OPS} tail ops) in {:.3} s \
         (bar <= {RECOVERY_BAR_SECS} s at 2^20)",
        recovery.elements, recovery.checkpoints, recovery.seconds
    );
    drop(recovered);
    for dir in &dirs_to_drop {
        std::fs::remove_dir_all(dir).ok();
    }

    let path = "BENCH_durability.json";
    match write_json(path, &results, &recovery, &cli, workers, hw, segs, seg_ops) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    results: &[(Policy, PolicyResult)],
    recovery: &Recovery,
    cli: &Cli,
    workers: usize,
    hw: usize,
    segs: usize,
    seg_ops: usize,
) -> std::io::Result<()> {
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"durability\",\n");
    json.push_str(&format!(
        "  \"scale\": {},\n  \"paired_segments\": {segs},\n  \"ops_per_segment\": {seg_ops},\n  \"batch\": {BATCH},\n  \"depth\": {DEPTH},\n",
        cli.scale
    ));
    json.push_str(&format!(
        "  \"partitions\": {PARTITIONS},\n  \"every_n\": {EVERY_N},\n  \"shards\": {SHARDS},\n  \"router_workers\": {workers},\n"
    ));
    json.push_str(&format!(
        "  \"seed\": {},\n  \"segment_size\": {},\n  \"reps\": {},\n  \"hw_threads\": {hw},\n",
        cli.seed, cli.seg, cli.reps
    ));
    json.push_str("  \"results\": [\n");
    for (i, (policy, r)) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"policy\": \"{}\", \"ops_per_sec\": {:.1}, \"ratio_vs_off\": {:.4}}}{}\n",
            policy.label(),
            r.rate,
            r.ratio_vs_off,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"ratio_group_commit_vs_off\": {:.4},\n  \"ratio_every_4096_vs_off\": {:.4},\n  \"ratio_bar\": {RATIO_BAR},\n",
        results[1].1.ratio_vs_off, results[2].1.ratio_vs_off
    ));
    json.push_str(&format!(
        "  \"recovery\": {{\"elements\": {}, \"tail_ops\": {TAIL_OPS}, \"checkpoint_seals\": {}, \"seconds\": {:.4}}},\n",
        recovery.elements, recovery.checkpoints
    , recovery.seconds));
    json.push_str(&format!(
        "  \"recovery_bar_seconds\": {RECOVERY_BAR_SECS}\n}}\n"
    ));
    std::fs::write(path, json)
}
