//! Figure 12 — update-oriented vs scan-oriented density thresholds.
//!
//! Inserts N elements (uniform and sequential patterns) into the RMA
//! under the UT preset (`ρ₁=0.08, ρ_h=0.3, τ_h=0.75, τ₁=1`, doubling
//! resizes) and the ST preset (`ρ₁=0, ρ_h=τ_h=0.75, τ₁=1`,
//! proportional resizes), plus the (a,b)-tree and the dense array.
//! At size checkpoints it reports a) insertion throughput since the
//! previous checkpoint, b) full-scan throughput, c) memory footprint.

use abtree::{AbTree, AbTreeConfig};
use bench_harness::stores::dense_from_pairs;
use bench_harness::{fmt_bytes, throughput, time, Cli};
use rma_core::{Rma, RmaConfig, Thresholds};
use workloads::{KeyStream, Pattern};

struct Row {
    name: &'static str,
    ins: f64,
    scan: f64,
    bytes: usize,
}

fn main() {
    let cli = Cli::parse();
    let n = cli.scale;
    let b = cli.seg;
    let checkpoints: Vec<usize> = (1..=8).map(|i| n * i / 8).collect();

    println!("# Fig. 12 — N={n}, B={b}");
    for pattern in [Pattern::Uniform, Pattern::Sequential] {
        println!("\n## pattern: {}", pattern.label());
        println!(
            "{:>10} {:<10} {:>12} {:>12} {:>12}",
            "size", "structure", "ins elts/s", "scan elts/s", "footprint"
        );
        let mut ut = Rma::new(
            RmaConfig::with_segment_size(b).with_thresholds(Thresholds::update_oriented()),
        );
        let mut st =
            Rma::new(RmaConfig::with_segment_size(b).with_thresholds(Thresholds::scan_oriented()));
        let mut tree = AbTree::new(AbTreeConfig::with_leaf_capacity(b));
        let mut ut_stream = KeyStream::new(pattern, cli.seed);
        let mut st_stream = KeyStream::new(pattern, cli.seed);
        let mut tr_stream = KeyStream::new(pattern, cli.seed);
        let mut dense_stream = KeyStream::new(pattern, cli.seed);
        let mut done = 0usize;
        for &c in &checkpoints {
            let batch = c - done;
            done = c;
            let mut rows: Vec<Row> = Vec::new();
            {
                let (_, secs) = time(|| {
                    for _ in 0..batch {
                        let (k, v) = ut_stream.next_pair();
                        ut.insert(k, v);
                    }
                });
                let (visited, ssecs) = time(|| {
                    let (n, sum) = ut.sum_range(i64::MIN, c);
                    std::hint::black_box(sum);
                    n
                });
                rows.push(Row {
                    name: "RMA/UT",
                    ins: throughput(batch, secs),
                    scan: throughput(visited, ssecs),
                    bytes: ut.memory_footprint(),
                });
            }
            {
                let (_, secs) = time(|| {
                    for _ in 0..batch {
                        let (k, v) = st_stream.next_pair();
                        st.insert(k, v);
                    }
                });
                let (visited, ssecs) = time(|| {
                    let (n, sum) = st.sum_range(i64::MIN, c);
                    std::hint::black_box(sum);
                    n
                });
                rows.push(Row {
                    name: "RMA/ST",
                    ins: throughput(batch, secs),
                    scan: throughput(visited, ssecs),
                    bytes: st.memory_footprint(),
                });
            }
            {
                let (_, secs) = time(|| {
                    for _ in 0..batch {
                        let (k, v) = tr_stream.next_pair();
                        tree.insert(k, v);
                    }
                });
                let (visited, ssecs) = time(|| {
                    let (n, sum) = tree.sum_range(i64::MIN, c);
                    std::hint::black_box(sum);
                    n
                });
                rows.push(Row {
                    name: "(a,b)-tree",
                    ins: throughput(batch, secs),
                    scan: throughput(visited, ssecs),
                    bytes: tree.memory_footprint(),
                });
            }
            {
                // The dense array is static: rebuilt per checkpoint
                // from the prefix of the same stream.
                let _ = dense_stream.take_pairs(batch);
                let all: Vec<(i64, i64)> = {
                    let mut s = KeyStream::new(pattern, cli.seed);
                    s.take_pairs(c)
                };
                let dense = dense_from_pairs(&all);
                let (visited, ssecs) = time(|| {
                    let (n, sum) = dense.sum_range(i64::MIN, c);
                    std::hint::black_box(sum);
                    n
                });
                rows.push(Row {
                    name: "Dense array",
                    ins: f64::NAN,
                    scan: throughput(visited, ssecs),
                    bytes: dense.memory_footprint(),
                });
            }
            for r in rows {
                println!(
                    "{:>10} {:<10} {:>12.3e} {:>12.3e} {:>12}",
                    c,
                    r.name,
                    r.ins,
                    r.scan,
                    fmt_bytes(r.bytes)
                );
            }
        }
        println!(
            "resizes: UT grows={} shrinks={}, ST grows={} shrinks={}",
            ut.stats().grows,
            ut.stats().shrinks,
            st.stats().grows,
            st.stats().shrinks
        );
    }
}
