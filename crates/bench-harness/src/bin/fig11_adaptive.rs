//! Figure 11 — adaptive rebalancing under skew.
//!
//! a) insert-only: N elements drawn uniform / Zipf(α) for α ∈
//!    {0.5 … 3.0}; structures: ART, RMA with even rebalancing, RMA
//!    with adaptive rebalancing, TPMA with the APMA rebalancer.
//! b) mixed: the structure is loaded to N, then γ = 1024 contiguous
//!    insertions alternate with γ deletions (independent seeds), and
//!    the update throughput over N further operations is reported.
//!    APMA does not support deletions (as in the paper) and is
//!    omitted from (b).

use bench_harness::stores::{art_factory, rma_factory, tpma_factory, StoreFactory};
use bench_harness::{median_of, throughput, time, zipf_beta, Cli};
use pma_baseline::TpmaConfig;
use workloads::{KeyStream, MixedWorkload, Op, Pattern};

fn alphas() -> Vec<Option<f64>> {
    vec![
        None,
        Some(0.5),
        Some(1.0),
        Some(1.5),
        Some(2.0),
        Some(2.5),
        Some(3.0),
    ]
}

fn pattern_for(alpha: Option<f64>, beta: u64) -> Pattern {
    match alpha {
        None => Pattern::Uniform,
        Some(a) => Pattern::Zipf { alpha: a, beta },
    }
}

fn main() {
    let cli = Cli::parse();
    let n = cli.scale;
    let beta = zipf_beta(n);
    let b = cli.seg;
    let lineup: Vec<(&str, StoreFactory)> = vec![
        ("ART", art_factory(b)),
        ("Even rebal.", rma_factory(b, true, false)),
        ("Adaptive rebal.", rma_factory(b, true, true)),
        ("APMA", tpma_factory(TpmaConfig::apma())),
    ];

    println!("# Fig. 11 — N={n}, B={b}, beta={beta}, reps={}", cli.reps);

    println!("\n## a) insert only — throughput [elts/s]");
    print!("{:<16}", "structure");
    for a in alphas() {
        print!(" {:>11}", a.map_or("unif".into(), |a| format!("a={a}")));
    }
    println!();
    for (name, factory) in &lineup {
        print!("{name:<16}");
        for alpha in alphas() {
            let pattern = pattern_for(alpha, beta);
            let tput = median_of(cli.reps, || {
                let mut s = factory();
                let mut stream = KeyStream::new(pattern, cli.seed);
                let (_, secs) = time(|| {
                    for _ in 0..n {
                        let (k, v) = stream.next_pair();
                        s.insert(k, v);
                    }
                });
                throughput(n, secs)
            });
            print!(" {tput:>11.3e}");
        }
        println!();
    }

    println!("\n## b) mixed (gamma=1024 ins/del rounds at fixed cardinality)");
    print!("{:<16}", "structure");
    for a in alphas() {
        print!(" {:>11}", a.map_or("unif".into(), |a| format!("a={a}")));
    }
    println!();
    for (name, factory) in &lineup {
        if *name == "APMA" {
            continue; // no deletion support, as in the paper
        }
        print!("{name:<16}");
        for alpha in alphas() {
            if *name == "ART" && alpha.is_some_and(|a| a > 1.0) {
                // Known artifact: the min-key leaf index degrades to
                // O(run/B) walks on extreme duplicate runs (see
                // EXPERIMENTS.md); cells would take hours.
                print!(" {:>11}", "skip(dup)");
                continue;
            }
            let pattern = pattern_for(alpha, beta);
            let tput = median_of(cli.reps, || {
                let mut s = factory();
                let mut stream = KeyStream::new(pattern, cli.seed);
                for _ in 0..n {
                    let (k, v) = stream.next_pair();
                    s.insert(k, v);
                }
                let mut mixed = MixedWorkload::new(pattern, 1024, cli.seed ^ 0xA, cli.seed ^ 0xB);
                let ops = n; // one further N of updates
                let (_, secs) = time(|| {
                    for _ in 0..ops {
                        match mixed.next_op() {
                            Op::Insert(k, v) => s.insert(k, v),
                            Op::DeleteSuccessor(k) => {
                                s.remove_successor(k);
                            }
                        }
                    }
                });
                throughput(ops, secs)
            });
            print!(" {tput:>11.3e}");
        }
        println!();
    }
}
