//! Internal debugging: adaptive mixed-workload throughput per alpha.
use bench_harness::{time, zipf_beta, Cli};
use rma_core::{Rma, RmaConfig};
use workloads::{KeyStream, MixedWorkload, Op, Pattern};

fn main() {
    let cli = Cli::parse();
    let n = cli.scale;
    let beta = zipf_beta(n);
    for alpha in [1.5, 2.0, 3.0] {
        let pattern = Pattern::Zipf { alpha, beta };
        let mut r = Rma::new(RmaConfig::with_segment_size(128));
        let mut s = KeyStream::new(pattern, 42);
        for _ in 0..n {
            let (k, v) = s.next_pair();
            r.insert(k, v);
        }
        let mut mixed = MixedWorkload::new(pattern, 1024, 42 ^ 0xA, 42 ^ 0xB);
        let (_, secs) = time(|| {
            for _ in 0..n {
                match mixed.next_op() {
                    Op::Insert(k, v) => r.insert(k, v),
                    Op::DeleteSuccessor(k) => {
                        r.remove_successor(k);
                    }
                }
            }
        });
        println!(
            "alpha {alpha}: mixed {:.0}K/s rebal={} adaptive={} grows={} shrinks={}",
            n as f64 / secs / 1e3,
            r.stats().rebalances,
            r.stats().adaptive_rebalances,
            r.stats().grows,
            r.stats().shrinks
        );
    }
}
