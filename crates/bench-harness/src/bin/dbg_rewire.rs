//! Internal debugging: isolate rewiring primitive costs.
use rewiring::{RewireOptions, RewiredVec};
use std::time::Instant;

fn main() {
    let opts = RewireOptions {
        page_bytes: 64 << 10,
        reserve_bytes: 1 << 30,
        force_heap: false,
        huge_pages: true,
    };
    let mut v = RewiredVec::<i64>::new(opts);
    let epp = v.elems_per_page();
    v.resize_in_place(64 * epp);
    v.as_mut_slice().fill(7);

    // warm buffer
    let _ = v.array_and_buffer_mut(8 * epp);

    let t = Instant::now();
    let rounds = 2000;
    for _ in 0..rounds {
        let (arr, buf) = v.array_and_buffer_mut(8 * epp);
        buf.copy_from_slice(&arr[..8 * epp]);
        v.commit_window_swap(0, 8 * epp);
    }
    let el = t.elapsed().as_secs_f64();
    println!(
        "rewired swap of 8 pages x{rounds}: {:.1} us/commit ({:.2} GB/s effective)",
        el / rounds as f64 * 1e6,
        ((rounds * 8 * 64) << 10) as f64 / el / 1e9
    );

    // compare: pure memcpy of same volume on heap
    let mut a = vec![7i64; 64 * epp];
    let mut b = vec![0i64; 8 * epp];
    let t = Instant::now();
    for _ in 0..rounds {
        b.copy_from_slice(&a[..8 * epp]);
        a[..8 * epp].copy_from_slice(&b);
    }
    let el = t.elapsed().as_secs_f64();
    println!(
        "two-pass heap memcpy of 8 pages x{rounds}: {:.1} us ({:.2} GB/s)",
        el / rounds as f64 * 1e6,
        ((rounds * 8 * 64) << 10) as f64 / el / 1e9
    );

    // read-after-swap cost (faults?)
    let t = Instant::now();
    let mut sum = 0i64;
    for _ in 0..rounds {
        let (arr, buf) = v.array_and_buffer_mut(8 * epp);
        buf.copy_from_slice(&arr[..8 * epp]);
        v.commit_window_swap(0, 8 * epp);
        sum += v.as_slice()[..8 * epp].iter().sum::<i64>();
    }
    let el = t.elapsed().as_secs_f64();
    println!(
        "swap+readback x{rounds}: {:.1} us/commit (sum {sum})",
        el / rounds as f64 * 1e6
    );
}
