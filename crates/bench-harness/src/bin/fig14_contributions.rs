//! Figure 14 — cumulative contribution of the RMA's design features.
//!
//! The feature ladder, measured on the four insertion patterns plus a
//! scan workload, each row reporting the cumulative speedup over the
//! TPMA baseline:
//!
//! 1. `Baseline`      — TPMA: interleaved gaps, log²-sized segments;
//! 2. `+Clustering`   — packed segments + cards array;
//! 3. `+Fixed segs`   — block-sized segments (B);
//! 4. `+Static index` — the RMA with rewiring and adaptive off;
//! 5. `+Rewiring`     — rewired rebalances/resizes;
//! 6. `+Adaptive`     — adaptive rebalancing (full RMA).

use bench_harness::stores::{rma_factory, tpma_factory, StoreFactory};
use bench_harness::{median_of, random_start_key, throughput, time, zipf_beta, Cli};
use pma_baseline::TpmaConfig;
use workloads::{KeyStream, Pattern, SplitMix64};

fn main() {
    let cli = Cli::parse();
    let n = cli.scale;
    let beta = zipf_beta(n);
    let b = cli.seg;
    let patterns = [
        Pattern::Uniform,
        Pattern::Zipf { alpha: 1.0, beta },
        Pattern::Zipf { alpha: 1.5, beta },
        Pattern::Sequential,
    ];
    let ladder: Vec<(&str, StoreFactory)> = vec![
        ("Baseline", tpma_factory(TpmaConfig::traditional())),
        ("+Clustering", tpma_factory(TpmaConfig::clustered())),
        ("+Fixed segs", tpma_factory(TpmaConfig::fixed_segments(b))),
        ("+Static index", rma_factory(b, false, false)),
        ("+Rewiring", rma_factory(b, true, false)),
        ("+Adaptive", rma_factory(b, true, true)),
    ];

    println!("# Fig. 14 — N={n}, B={b}, reps={}", cli.reps);
    print!("{:<14}", "feature");
    for p in patterns {
        print!(" {:>11}", p.label());
    }
    println!(" {:>11}", "scans");

    let mut base: Option<Vec<f64>> = None;
    for (name, factory) in &ladder {
        let mut row: Vec<f64> = Vec::new();
        for pattern in patterns {
            let tput = median_of(cli.reps, || {
                let mut s = factory();
                let mut stream = KeyStream::new(pattern, cli.seed);
                let (_, secs) = time(|| {
                    for _ in 0..n {
                        let (k, v) = stream.next_pair();
                        s.insert(k, v);
                    }
                });
                throughput(n, secs)
            });
            row.push(tput);
        }
        // Scan column: uniform content, random 1% scans.
        let mut s = factory();
        let mut stream = KeyStream::new(Pattern::Uniform, cli.seed);
        for _ in 0..n {
            let (k, v) = stream.next_pair();
            s.insert(k, v);
        }
        let count = (n / 100).max(1);
        let scan = median_of(cli.reps, || {
            let mut rng = SplitMix64::new(cli.seed ^ 0x5CA3);
            let (visited, secs) = time(|| {
                let mut visited = 0usize;
                let mut checksum = 0i64;
                for _ in 0..32 {
                    let start = random_start_key(Pattern::Uniform, &mut rng);
                    let (n, sum) = s.sum_range(start, count);
                    visited += n;
                    checksum = checksum.wrapping_add(sum);
                }
                std::hint::black_box(checksum);
                visited
            });
            throughput(visited.max(1), secs)
        });
        row.push(scan);
        let base_row = base.get_or_insert_with(|| row.clone());
        print!("{name:<14}");
        for (v, b0) in row.iter().zip(base_row.iter()) {
            print!(" {:>10.2}x", v / b0);
        }
        println!();
    }
    println!("\n(values are cumulative speedups w.r.t. the TPMA baseline, as on the Fig. 14 bars)");
}
