//! Figure 20 (beyond the paper) — the cost of always-on
//! observability.
//!
//! PR 6 instruments the whole stack: router workers time a sampled
//! 1-in-N of operations (default N=16, a monotonic clock-read pair
//! around each sampled op) into log₂-bucketed latency histograms,
//! sessions record batch sizes and queue depths, tickets record batch
//! wall time, and the maintenance engine journals every structural
//! step. All of it defaults to **on** — which is only tenable if the
//! overhead is noise. This driver measures an identical pipelined-session
//! workload against one preloaded `Db` with observability `on`
//! (default [`ObsConfig`]) and `off` (`enabled: false` — no clock
//! reads, no histogram writes, no journal), across two mixes:
//!
//! * `uniform` — 90/10 get/insert over uniformly random keys (the
//!   throughput-friendly shape: maximal op rate, maximal relative
//!   cost of any per-op bookkeeping);
//! * `hotspot` — the same 90/10 coin over a shifting hot band
//!   ([`ShiftingHotspot`]), concentrating traffic the way skewed
//!   production workloads do.
//!
//! Methodology: run-to-run throughput on a small host drifts by more
//! than the effect being measured, so the comparison is *paired* as
//! tightly as possible. Per mix, one `on` and one `off` database are
//! built once from the same bulk load; the op stream is then cut into
//! many short pre-generated segments, and each segment is timed
//! against both handles back to back (order alternating, one
//! discarded warm-up segment first) — pure pipelined submission, no
//! generation or build cost in the timed region. Both databases see
//! the same total op stream, so their contents evolve identically;
//! host jitter lands on both sides of most adjacent pairs and
//! cancels. The reported ratio is the median of the per-segment-pair
//! ratios; the throughput columns are the medians of the individual
//! timed segments.
//!
//! The repository's acceptance bar: instrumented throughput ≥
//! **0.9×** uninstrumented on both mixes.
//!
//! Writes `BENCH_obs_overhead.json`; schema in
//! `crates/bench-harness/README.md`.

use bench_harness::{fmt_throughput, median_of, throughput, time, Cli};
use rma_core::RmaConfig;
use rma_db::{Db, ObsConfig, Op, Ticket};
use std::collections::VecDeque;
use workloads::{HotspotConfig, MixOp, ReadWriteMix, ShiftingHotspot, SplitMix64};

const SHARDS: usize = 8;
/// Ops per submitted batch (amortizes the channel hop).
const BATCH: usize = 1024;
/// Tickets each session keeps in flight before collecting.
const DEPTH: usize = 4;
const READ_FRACTION: f64 = 0.9;
const RATIO_BAR: f64 = 0.9;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mix {
    Uniform,
    Hotspot,
}

impl Mix {
    fn label(self) -> &'static str {
        match self {
            Mix::Uniform => "uniform",
            Mix::Hotspot => "hotspot",
        }
    }
}

fn preloaded(cli: &Cli, obs_on: bool) -> Db {
    let mut base: Vec<(i64, i64)> = {
        let mut rng = SplitMix64::new(cli.seed ^ 0xB00B_5EED);
        (0..cli.scale)
            .map(|i| ((rng.next_u64() >> 2) as i64, i as i64))
            .collect()
    };
    base.sort_unstable();
    Db::builder()
        .shards(SHARDS)
        .rma(RmaConfig::with_segment_size(cli.seg))
        .observability(ObsConfig {
            enabled: obs_on,
            ..Default::default()
        })
        .build_bulk(&base)
        .expect("static driver config is valid")
}

/// A 90/10 get/insert mix over the chosen key distribution.
fn mix_for(cli: &Cli, mix: Mix) -> ReadWriteMix<Box<dyn FnMut() -> i64>> {
    let keys: Box<dyn FnMut() -> i64> = match mix {
        Mix::Uniform => {
            let mut rng = SplitMix64::new(cli.seed ^ 0x5E55_0001);
            Box::new(move || (rng.next_u64() >> 2) as i64)
        }
        Mix::Hotspot => {
            let mut hs = ShiftingHotspot::new(HotspotConfig::default(), cli.seed ^ 0x5E55_0002);
            Box::new(move || hs.next_key())
        }
    };
    ReadWriteMix::new(keys, READ_FRACTION, cli.seed ^ 0xC01D_0001)
}

/// Pre-generates one segment of `ops` mixed operations, already cut
/// into submission batches, so generation cost stays outside the
/// timed region and both databases replay the identical stream.
fn make_segment(source: &mut ReadWriteMix<Box<dyn FnMut() -> i64>>, ops: usize) -> Vec<Vec<Op>> {
    let mut batches = Vec::with_capacity(ops.div_ceil(BATCH));
    let mut remaining = ops;
    while remaining > 0 {
        let n = remaining.min(BATCH);
        batches.push(
            (0..n)
                .map(|_| match source.next_op() {
                    MixOp::Read(k) => Op::Get(k),
                    MixOp::Write(k, v) => Op::Insert(k, v),
                })
                .collect(),
        );
        remaining -= n;
    }
    batches
}

/// Times one pipelined pass of a pre-generated segment. Returns
/// ops/second.
fn drive(db: &Db, segment: &[Vec<Op>]) -> f64 {
    let ops: usize = segment.iter().map(Vec::len).sum();
    let (_, secs) = time(|| {
        let mut session = db.session();
        let mut in_flight: VecDeque<Ticket> = VecDeque::new();
        for batch in segment {
            in_flight.push_back(session.submit(batch));
            if in_flight.len() >= DEPTH {
                let replies = in_flight.pop_front().expect("non-empty").wait();
                std::hint::black_box(replies.len());
            }
        }
        for ticket in in_flight {
            std::hint::black_box(ticket.wait().len());
        }
    });
    throughput(ops, secs)
}

/// Median throughput for each configuration plus the median of the
/// per-repetition paired ratios.
struct MixResult {
    on: f64,
    off: f64,
    ratio: f64,
}

/// Paired segments per repetition. Short adjacent segments interleave
/// the two configurations at ~tens-of-milliseconds granularity, so
/// host jitter (scheduler ticks, frequency steps) lands on both sides
/// of most pairs and the median over `reps × PAIRS_PER_REP` ratios
/// converges where a handful of long runs does not.
const PAIRS_PER_REP: usize = 8;

/// Measures one mix with tightly paired repetitions over two
/// identically built databases (see the module docs).
fn run_mix(cli: &Cli, mix: Mix) -> MixResult {
    let db_on = preloaded(cli, true);
    let db_off = preloaded(cli, false);
    let mut source = mix_for(cli, mix);
    let pairs = cli.reps.max(1) * PAIRS_PER_REP;
    let seg_ops = (cli.scale / pairs).max(BATCH * DEPTH * 2);

    let warm = make_segment(&mut source, seg_ops);
    std::hint::black_box(drive(&db_on, &warm));
    std::hint::black_box(drive(&db_off, &warm));

    let mut ons = Vec::with_capacity(pairs);
    let mut offs = Vec::with_capacity(pairs);
    let mut ratios = Vec::with_capacity(pairs);
    for pair in 0..pairs {
        let segment = make_segment(&mut source, seg_ops);
        let on_first = pair % 2 == 0;
        let (on, off) = if on_first {
            let a = drive(&db_on, &segment);
            (a, drive(&db_off, &segment))
        } else {
            let b = drive(&db_off, &segment);
            (drive(&db_on, &segment), b)
        };
        ons.push(on);
        offs.push(off);
        ratios.push(on / off);
    }
    let med = |xs: Vec<f64>| {
        let n = xs.len();
        median_of(n, {
            let mut it = xs.into_iter();
            move || it.next().expect("one value per rep")
        })
    };
    MixResult {
        on: med(ons),
        off: med(offs),
        ratio: med(ratios),
    }
}

fn write_json(
    path: &str,
    results: &[(Mix, MixResult)],
    cli: &Cli,
    workers: usize,
    hw: usize,
) -> std::io::Result<()> {
    let mut json = String::from("{\n");
    let pairs = cli.reps.max(1) * PAIRS_PER_REP;
    let seg_ops = (cli.scale / pairs).max(BATCH * DEPTH * 2);
    json.push_str("  \"bench\": \"obs_overhead\",\n");
    json.push_str(&format!(
        "  \"scale\": {},\n  \"paired_segments\": {pairs},\n  \"ops_per_segment\": {seg_ops},\n  \"batch\": {BATCH},\n  \"depth\": {DEPTH},\n",
        cli.scale
    ));
    json.push_str(&format!(
        "  \"read_fraction\": {READ_FRACTION},\n  \"shards\": {SHARDS},\n  \"router_workers\": {workers},\n"
    ));
    json.push_str(&format!(
        "  \"seed\": {},\n  \"segment_size\": {},\n  \"reps\": {},\n  \"hw_threads\": {hw},\n",
        cli.seed, cli.seg, cli.reps
    ));
    json.push_str("  \"results\": [\n");
    for (i, (mix, r)) in results.iter().enumerate() {
        for (obs, rate) in [(true, r.on), (false, r.off)] {
            let last = i + 1 == results.len() && !obs;
            json.push_str(&format!(
                "    {{\"mix\": \"{}\", \"obs\": {obs}, \"ops_per_sec\": {rate:.1}}}{}\n",
                mix.label(),
                if last { "" } else { "," }
            ));
        }
    }
    json.push_str("  ],\n");
    for (mix, r) in results {
        json.push_str(&format!(
            "  \"ratio_instrumented_vs_off_{}\": {:.4},\n",
            mix.label(),
            r.ratio
        ));
    }
    json.push_str(&format!("  \"ratio_bar\": {RATIO_BAR}\n}}\n"));
    std::fs::write(path, json)
}

fn main() {
    let cli = Cli::parse();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = preloaded(
        &Cli {
            scale: 16,
            ..cli.clone()
        },
        true,
    )
    .stats()
    .router
    .workers;
    println!(
        "# Fig. 20 — observability overhead: N={} preloaded, N mixed ops ({} reads), {SHARDS} shards, {workers} router workers, batch {BATCH}, depth {DEPTH}, B={}, hw_threads={hw}",
        cli.scale, READ_FRACTION, cli.seg
    );
    println!(
        "{:<9} {:>14} {:>14} {:>8}",
        "mix", "obs on", "obs off", "ratio"
    );

    let mut results = Vec::new();
    for mix in [Mix::Uniform, Mix::Hotspot] {
        let r = run_mix(&cli, mix);
        println!(
            "{:<9} {:>14} {:>14} {:>8.3}",
            mix.label(),
            fmt_throughput(r.on as usize, 1.0).trim(),
            fmt_throughput(r.off as usize, 1.0).trim(),
            r.ratio
        );
        results.push((mix, r));
    }
    println!(
        "# bar: instrumented/off >= {RATIO_BAR} on both mixes (median of paired per-rep ratios)"
    );

    // Demonstrate what the instrumented run actually buys: one small
    // run with observability on, reported through `Db::metrics()`.
    let db = preloaded(
        &Cli {
            scale: (cli.scale / 8).max(1024),
            ..cli.clone()
        },
        true,
    );
    let mut source = mix_for(&cli, Mix::Uniform);
    let mut session = db.session();
    let ops: Vec<Op> = (0..4096)
        .map(|_| match source.next_op() {
            MixOp::Read(k) => Op::Get(k),
            MixOp::Write(k, v) => Op::Insert(k, v),
        })
        .collect();
    for chunk in ops.chunks(BATCH) {
        std::hint::black_box(session.submit(chunk).wait().len());
    }
    print!("{}", db.metrics());

    let path = "BENCH_obs_overhead.json";
    match write_json(path, &results, &cli, workers, hw) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
