//! Figure 17 (beyond the paper) — read tail latency under index
//! maintenance.
//!
//! The point of the optimistic read path (seqlock shards + epoch
//! topology, PR 3) is that splitter re-learning and shard
//! rebalancing no longer stall readers. This driver measures it: a
//! 90/10 read/write mix runs against a preloaded [`rma_shard::ShardedRma`]
//! under three maintenance regimes over the same operation stream —
//!
//! * `off` — maintenance never runs (the latency floor);
//! * `inline` — the serving thread calls `maintain()` synchronously
//!   on a fixed cadence (the PR-2 deployment style); the pause is
//!   charged to the next request, which is what a caller queued
//!   behind inline maintenance would observe;
//! * `background` — a [`Maintainer`](rma_shard::Maintainer) thread
//!   watches `access_imbalance()` and the op rate and runs
//!   maintenance concurrently; readers proceed optimistically.
//!
//! Two key distributions: `uniform` (maintenance stays idle — a
//! sanity baseline) and `hotspot` ([`workloads::ShiftingHotspot`],
//! whose jumping hot band forces re-learning mid-measurement).
//!
//! Writes `BENCH_read_latency.json`; the acceptance bar tracked by
//! the repository is `p99_ratio_background_vs_off_* ≤ 2.0` (the
//! background-maintenance read p99 stays within 2× the
//! maintenance-off floor). Schema in `crates/bench-harness/README.md`.

use bench_harness::Cli;
use rma_core::RmaConfig;
use rma_db::Db;
use rma_shard::{MaintainerConfig, ShardConfig};
use std::time::{Duration, Instant};
use workloads::{
    drive_recorded, summarize, HotspotConfig, HotspotMotion, LatencySummary, ReadWriteMix,
    ShiftingHotspot, SplitMix64,
};

const SHARDS: usize = 8;
const READ_FRACTION: f64 = 0.9;
/// Hot-band phases across the measurement window (matches fig16).
const PHASES: u64 = 6;
/// Inline mode calls `maintain()` this many times per measurement
/// (twice per hotspot phase, mirroring fig16's cadence).
const INLINE_MAINTS: u64 = 2 * PHASES;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Dist {
    Uniform,
    Hotspot,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Off,
    Inline,
    Background,
}

impl Dist {
    fn label(self) -> &'static str {
        match self {
            Dist::Uniform => "uniform",
            Dist::Hotspot => "hotspot",
        }
    }
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::Inline => "inline",
            Mode::Background => "background",
        }
    }
}

struct Row {
    dist: Dist,
    mode: Mode,
    reads: LatencySummary,
    writes: LatencySummary,
    maintain_runs: u64,
    relearns: u64,
    shards_after: usize,
}

fn preloaded(cli: &Cli, mode: Mode) -> Db {
    let cfg = ShardConfig {
        num_shards: SHARDS,
        rma: RmaConfig::with_segment_size(cli.seg),
        min_split_len: 256,
        ..Default::default()
    };
    let mut base: Vec<(i64, i64)> = {
        let mut rng = SplitMix64::new(cli.seed ^ 0xB00B_5EED);
        (0..cli.scale)
            .map(|i| ((rng.next_u64() >> 2) as i64, i as i64))
            .collect()
    };
    base.sort_unstable();
    let mut builder = Db::builder().shard_config(cfg);
    if mode == Mode::Background {
        // The facade owns the maintainer: it starts with the handle
        // and is stopped deterministically before the row is read.
        builder = builder.maintenance(MaintainerConfig {
            poll_interval: Duration::from_millis(5),
            imbalance_trigger: 1.25,
            min_ops_between: 2048,
            ..Default::default()
        });
    }
    builder
        .build_bulk(&base)
        .expect("static driver config is valid")
}

/// Key source for one run: a boxed closure so both distributions fit
/// one driver loop.
fn key_source(cli: &Cli, dist: Dist, ops: u64) -> Box<dyn FnMut() -> i64> {
    match dist {
        Dist::Uniform => {
            let mut rng = SplitMix64::new(cli.seed ^ 0x5EED_1234);
            Box::new(move || (rng.next_u64() >> 2) as i64)
        }
        Dist::Hotspot => {
            let mut hs = ShiftingHotspot::new(
                HotspotConfig {
                    phase_len: (ops / PHASES).max(1),
                    motion: HotspotMotion::Jump,
                    ..Default::default()
                },
                cli.seed,
            );
            Box::new(move || hs.next_key())
        }
    }
}

fn run(cli: &Cli, dist: Dist, mode: Mode) -> Row {
    let db = preloaded(cli, mode);
    let ops = cli.scale as u64;
    let mut mix = ReadWriteMix::new(
        key_source(cli, dist, ops),
        READ_FRACTION,
        cli.seed ^ 0xC01D_C0FE,
    );

    let maint_every = (ops / INLINE_MAINTS).max(1);
    let mut inline_runs = 0u64;
    let mut inline_relearns = 0u64;
    let idx = db.engine();
    let log = drive_recorded(
        ops,
        &mut mix,
        |k| {
            std::hint::black_box(idx.get(k));
        },
        |k, v| idx.insert(k, v),
        |i| {
            if mode == Mode::Inline && i > 0 && i % maint_every == 0 {
                let t = Instant::now();
                let (relearn, _) = idx.maintain();
                inline_runs += 1;
                inline_relearns += u64::from(relearn.relearned);
                t.elapsed().as_nanos() as u64
            } else {
                0
            }
        },
    );

    // Quiesce the background maintainer (no-op in the other modes)
    // so the row reports final counters over a stable topology.
    let (maintain_runs, relearns) = match db.stop_maintenance() {
        Some(stats) => (stats.runs, stats.relearns),
        None => (inline_runs, inline_relearns),
    };
    idx.check_invariants();
    Row {
        dist,
        mode,
        reads: summarize(&log.reads),
        writes: summarize(&log.writes),
        maintain_runs,
        relearns,
        shards_after: idx.num_shards(),
    }
}

fn write_json(path: &str, rows: &[Row], cli: &Cli, hw: usize) -> std::io::Result<()> {
    let p99_of = |dist: Dist, mode: Mode| {
        rows.iter()
            .find(|r| r.dist == dist && r.mode == mode)
            .map(|r| r.reads.p99 as f64)
            .unwrap_or(f64::NAN)
    };
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"read_latency\",\n");
    json.push_str(&format!(
        "  \"scale\": {},\n  \"ops\": {},\n  \"read_fraction\": {READ_FRACTION},\n",
        cli.scale, cli.scale
    ));
    json.push_str(&format!(
        "  \"shards\": {SHARDS},\n  \"phases\": {PHASES},\n  \"seed\": {},\n  \"segment_size\": {},\n  \"hw_threads\": {hw},\n",
        cli.seed, cli.seg
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"dist\": \"{}\", \"mode\": \"{}\", \"read_p50_ns\": {}, \"read_p99_ns\": {}, \
             \"read_p999_ns\": {}, \"read_max_ns\": {}, \"read_mean_ns\": {:.1}, \
             \"reads\": {}, \"write_p50_ns\": {}, \"write_p99_ns\": {}, \"write_p999_ns\": {}, \
             \"write_max_ns\": {}, \"writes\": {}, \"maintain_runs\": {}, \"relearns\": {}, \
             \"shards_after\": {}}}{}\n",
            r.dist.label(),
            r.mode.label(),
            r.reads.p50,
            r.reads.p99,
            r.reads.p999,
            r.reads.max,
            r.reads.mean,
            r.reads.samples,
            r.writes.p50,
            r.writes.p99,
            r.writes.p999,
            r.writes.max,
            r.writes.samples,
            r.maintain_runs,
            r.relearns,
            r.shards_after,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"p99_ratio_background_vs_off_uniform\": {:.4},\n",
        p99_of(Dist::Uniform, Mode::Background) / p99_of(Dist::Uniform, Mode::Off).max(1.0)
    ));
    json.push_str(&format!(
        "  \"p99_ratio_background_vs_off_hotspot\": {:.4},\n",
        p99_of(Dist::Hotspot, Mode::Background) / p99_of(Dist::Hotspot, Mode::Off).max(1.0)
    ));
    json.push_str(&format!(
        "  \"p999_ratio_inline_vs_background_hotspot\": {:.4}\n}}\n",
        rows.iter()
            .find(|r| r.dist == Dist::Hotspot && r.mode == Mode::Inline)
            .map(|r| r.reads.p999 as f64)
            .unwrap_or(f64::NAN)
            / rows
                .iter()
                .find(|r| r.dist == Dist::Hotspot && r.mode == Mode::Background)
                .map(|r| r.reads.p999 as f64)
                .unwrap_or(f64::NAN)
                .max(1.0)
    ));
    std::fs::write(path, json)
}

fn main() {
    let cli = Cli::parse();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "# Fig. 17 — get tail latency under maintenance: N={} preloaded, {} ops, {READ_FRACTION} reads, {SHARDS} shards, B={}, hw_threads={hw}",
        cli.scale, cli.scale, cli.seg
    );
    println!(
        "{:<9} {:<11} {:>9} {:>9} {:>10} {:>11} {:>7} {:>6}",
        "dist", "mode", "p50(ns)", "p99(ns)", "p999(ns)", "max(ns)", "maint", "shards"
    );
    let mut rows = Vec::new();
    for dist in [Dist::Uniform, Dist::Hotspot] {
        for mode in [Mode::Off, Mode::Inline, Mode::Background] {
            let row = run(&cli, dist, mode);
            println!(
                "{:<9} {:<11} {:>9} {:>9} {:>10} {:>11} {:>7} {:>6}",
                row.dist.label(),
                row.mode.label(),
                row.reads.p50,
                row.reads.p99,
                row.reads.p999,
                row.reads.max,
                row.maintain_runs,
                row.shards_after
            );
            rows.push(row);
        }
    }
    let p99 = |d: Dist, m: Mode| {
        rows.iter()
            .find(|r| r.dist == d && r.mode == m)
            .map(|r| r.reads.p99)
            .unwrap_or(0)
    };
    println!(
        "# background/off read p99 ratio: uniform {:.3}, hotspot {:.3} (bar: <= 2.0)",
        p99(Dist::Uniform, Mode::Background) as f64 / p99(Dist::Uniform, Mode::Off).max(1) as f64,
        p99(Dist::Hotspot, Mode::Background) as f64 / p99(Dist::Hotspot, Mode::Off).max(1) as f64,
    );

    let path = "BENCH_read_latency.json";
    match write_json(path, &rows, &cli, hw) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
