//! Internal debugging driver (not an experiment): feature timing.
use bench_harness::{time, Cli};
use rma_core::{Rma, RmaConfig};
use workloads::{KeyStream, Pattern};

fn run(label: &str, cfg: RmaConfig, n: usize, pattern: Pattern, seed: u64) {
    let mut r = Rma::new(cfg);
    let mut s = KeyStream::new(pattern, seed);
    let (_, secs) = time(|| {
        for _ in 0..n {
            let (k, v) = s.next_pair();
            r.insert(k, v);
        }
    });
    let st = r.stats();
    println!(
        "{label:<24} {:>8.0}K/s rebal={} adaptive={} grows={} moved={} rewired={} copied={}",
        n as f64 / secs / 1e3,
        st.rebalances,
        st.adaptive_rebalances,
        st.grows,
        st.elements_moved,
        st.rewired_commits,
        st.copied_commits
    );
}

fn main() {
    let cli = Cli::parse();
    let n = cli.scale;
    for (pl, pattern) in [("uniform", Pattern::Uniform), ("seq", Pattern::Sequential)] {
        println!("== pattern {pl} N={n}");
        run(
            "plain",
            RmaConfig::with_segment_size(128).plain(),
            n,
            pattern,
            cli.seed,
        );
        run(
            "rewired",
            RmaConfig::with_segment_size(128)
                .rewired(true)
                .adaptive(false),
            n,
            pattern,
            cli.seed,
        );
        run(
            "adaptive",
            RmaConfig::with_segment_size(128)
                .rewired(false)
                .adaptive(true),
            n,
            pattern,
            cli.seed,
        );
        run(
            "both",
            RmaConfig::with_segment_size(128),
            n,
            pattern,
            cli.seed,
        );
    }
}
