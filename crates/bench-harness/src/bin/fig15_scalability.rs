//! Figure 15 (beyond the paper) — thread scalability of the sharded
//! concurrent front-end.
//!
//! Pre-loads a sharded [`rma_db::Db`] with N elements, then drives an
//! aggregate of N mixed operations (alternating insert / point
//! lookup) from 1, 2, 4 and 8 client threads, for the uniform and
//! Zipf(1.0) key patterns. Reports aggregate ops/s per thread count
//! and writes a machine-readable `BENCH_shard_scaling.json` next to
//! the working directory so later PRs can track the scaling
//! trajectory.
//!
//! Shard count is fixed (4× the largest thread count) across all
//! runs, so the sweep varies exactly one thing: client parallelism.

use bench_harness::{fmt_throughput, median_of, throughput, time, zipf_beta, Cli};
use rma_core::RmaConfig;
use rma_db::Db;
use workloads::{KeyStream, Pattern};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SHARDS: usize = 32;

struct Row {
    pattern: String,
    threads: usize,
    ops_per_sec: f64,
}

fn run_one(pattern: Pattern, threads: usize, cli: &Cli) -> f64 {
    let n = cli.scale;
    median_of(cli.reps, || {
        let mut base = KeyStream::new(pattern, cli.seed).take_pairs(n);
        base.sort_unstable();
        let index = Db::builder()
            .shards(SHARDS)
            .rma(RmaConfig::with_segment_size(cli.seg))
            .build_bulk(&base)
            .expect("static driver config is valid");
        let per_thread = n / threads;
        let (_, secs) = time(|| {
            std::thread::scope(|sc| {
                for tid in 0..threads {
                    let index = &index;
                    sc.spawn(move || {
                        // Per-thread streams: disjoint seeds so threads
                        // do not serialise on identical hot keys.
                        let mut ops =
                            KeyStream::new(pattern, cli.seed ^ (0xA5A5_0000 + tid as u64));
                        let mut checksum = 0i64;
                        for i in 0..per_thread {
                            let (k, v) = ops.next_pair();
                            if i % 2 == 0 {
                                index.insert(k, v);
                            } else {
                                checksum = checksum.wrapping_add(index.get(k).unwrap_or_default());
                            }
                        }
                        std::hint::black_box(checksum);
                    });
                }
            });
        });
        throughput(per_thread * threads, secs)
    })
}

fn write_json(path: &str, rows: &[Row], cli: &Cli) -> std::io::Result<()> {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"shard_scaling\",\n  \"scale\": {},\n",
        cli.scale
    ));
    json.push_str(&format!(
        "  \"shards\": {SHARDS},\n  \"segment_size\": {},\n",
        cli.seg
    ));
    json.push_str(&format!(
        "  \"seed\": {},\n  \"reps\": {},\n",
        cli.seed, cli.reps
    ));
    json.push_str(&format!("  \"hw_threads\": {hw},\n  \"results\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"pattern\": \"{}\", \"threads\": {}, \"ops_per_sec\": {:.1}}}{}\n",
            r.pattern,
            r.threads,
            r.ops_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    let speedup = |pattern: &str, t: usize| -> Option<f64> {
        let base = rows
            .iter()
            .find(|r| r.pattern == pattern && r.threads == 1)?
            .ops_per_sec;
        let at = rows
            .iter()
            .find(|r| r.pattern == pattern && r.threads == t)?
            .ops_per_sec;
        Some(at / base)
    };
    // Lookup keys come from the rows themselves (first label is the
    // uniform sweep, second the Zipf sweep), not from re-typed label
    // strings that could drift from Pattern::label().
    let mut labels: Vec<&str> = Vec::new();
    for r in rows {
        if !labels.contains(&r.pattern.as_str()) {
            labels.push(&r.pattern);
        }
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_uniform_4t\": {:.3},\n  \"speedup_zipf_4t\": {:.3}\n}}\n",
        labels.first().and_then(|l| speedup(l, 4)).unwrap_or(0.0),
        labels.get(1).and_then(|l| speedup(l, 4)).unwrap_or(0.0)
    ));
    std::fs::write(path, json)
}

fn main() {
    let cli = Cli::parse();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "# Fig. 15 — sharded front-end scalability: N={} preloaded, N mixed ops (insert/lookup), {} shards, B={}, {} hw threads",
        cli.scale, SHARDS, cli.seg, hw
    );
    let patterns = [
        Pattern::Uniform,
        Pattern::Zipf {
            alpha: 1.0,
            beta: zipf_beta(cli.scale),
        },
    ];

    print!("{:<12}", "pattern");
    for t in THREAD_COUNTS {
        print!(" {:>10}", format!("{t} thr"));
    }
    println!(" {:>9}", "x @4thr");

    let mut rows = Vec::new();
    for pattern in patterns {
        print!("{:<12}", pattern.label());
        let mut base_rate = 0.0f64;
        for t in THREAD_COUNTS {
            let rate = run_one(pattern, t, &cli);
            if t == 1 {
                base_rate = rate;
            }
            print!(" {:>10}", fmt_throughput(rate as usize, 1.0).trim());
            rows.push(Row {
                pattern: pattern.label(),
                threads: t,
                ops_per_sec: rate,
            });
        }
        let four = rows
            .iter()
            .rev()
            .find(|r| r.threads == 4)
            .map_or(0.0, |r| r.ops_per_sec);
        println!(" {:>8.2}x", four / base_rate.max(1e-9));
    }

    let path = "BENCH_shard_scaling.json";
    match write_json(path, &rows, &cli) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
