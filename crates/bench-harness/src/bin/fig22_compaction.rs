//! Figure 22 (beyond the paper) — idle-time shard compaction after a
//! phased-hotspot burst.
//!
//! Demonstrates the anti-ratchet half of the cost-based maintenance
//! scheduler. A jump-motion shifting hotspot (the fig. 16 workload)
//! hammers one narrow band per phase; access-driven maintenance
//! splits the hot shard every phase, so the live shard count ratchets
//! well past the configured target while the retired bands' shards
//! linger. The driver then goes quiet and starts the background
//! maintainer: its op-rate estimate drops below
//! [`MaintainerConfig::idle_ops_threshold`], the idle gate engages,
//! and the consolidation chain
//! ([`rma_shard::ShardedRma::plan_consolidation`]) merges the coldest
//! neighbour pairs until the count is back at
//! `compact_target_factor x num_shards`.
//!
//! Recorded per run:
//!
//! * the shard-count / splitter-array-bytes trajectory across the
//!   accretion phases;
//! * routed-op throughput (90% point gets, 10% scans of 128) over the
//!   bloated topology *before* the quiet period and again *after*
//!   compaction — the payoff of the smaller splitter array and the
//!   restored shard locality;
//! * how many consolidation merges the background maintainer ran on
//!   its own before the deterministic
//!   [`compact`](rma_shard::ShardedRma::compact) backstop finished
//!   the job.
//!
//! Writes `BENCH_shard_compaction.json`; the schema is documented in
//! `crates/bench-harness/README.md`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench_harness::{fmt_throughput, median_of, throughput, time, Cli};
use rma_core::RmaConfig;
use rma_shard::{
    BalancePolicy, MaintainerConfig, RelearnStrategy, ShardConfig, ShardedRma, Splitters,
};
use workloads::{HotspotConfig, HotspotMotion, ShiftingHotspot, SplitMix64};

const SHARDS: usize = 8;
const PHASES: u64 = 6;
const SCAN_LEN: usize = 128;
/// The compaction target the committed gate asserts: the quiesced
/// topology must come back to `compact_target_factor x SHARDS`.
const TARGET_FACTOR: f64 = 2.0;
/// How long the driver is willing to sit in the quiet period waiting
/// for the background maintainer before the synchronous backstop.
const QUIET_BUDGET: Duration = Duration::from_millis(1500);

#[derive(Clone, Copy)]
struct TrajectoryRow {
    phase: u64,
    shards: usize,
    splitter_bytes: usize,
}

#[derive(Clone, Copy)]
struct Measurement {
    shards: usize,
    splitter_bytes: usize,
    ops_per_sec: f64,
}

fn shard_config(cli: &Cli) -> ShardConfig {
    ShardConfig {
        num_shards: SHARDS,
        rma: RmaConfig::with_segment_size(cli.seg),
        min_split_len: 256,
        relearn: true,
        balance: BalancePolicy::ByAccess,
        relearn_strategy: RelearnStrategy::Incremental,
        ..Default::default()
    }
}

/// Background maintainer tuned for the quiet period: fast poll, the
/// imbalance trigger parked out of reach (accretion already happened
/// synchronously), the idle gate armed at the committed target.
fn maintainer_config() -> MaintainerConfig {
    MaintainerConfig {
        poll_interval: Duration::from_millis(2),
        imbalance_trigger: 1e9,
        idle_ops_threshold: 1000.0,
        compact_target_factor: TARGET_FACTOR,
        ..Default::default()
    }
}

/// 90% point gets / 10% short scans over the whole key domain —
/// every op pays the splitter-array route. Returns ops/s.
fn routed_throughput(index: &ShardedRma, ops: usize, reps: usize, seed: u64) -> f64 {
    median_of(reps, || {
        let mut rng = SplitMix64::new(seed);
        let (_, secs) = time(|| {
            for i in 0..ops {
                let k = (rng.next_u64() >> 2) as i64;
                if i % 10 == 0 {
                    let mut sink = 0i64;
                    index.scan(k, SCAN_LEN, |_, v| sink ^= v);
                    std::hint::black_box(sink);
                } else {
                    std::hint::black_box(index.get(k));
                }
            }
        });
        throughput(ops, secs)
    })
}

fn measure(index: &ShardedRma, ops: usize, reps: usize, seed: u64) -> Measurement {
    let engine = index.stats_snapshot();
    Measurement {
        shards: engine.num_shards,
        splitter_bytes: engine.splitter_bytes,
        ops_per_sec: routed_throughput(index, ops, reps, seed),
    }
}

/// What the quiet period accomplished, for the JSON report.
struct QuietOutcome {
    background_consolidations: u64,
    compact_merges: usize,
    quiet_ms: u64,
}

fn write_json(
    path: &str,
    cli: &Cli,
    trajectory: &[TrajectoryRow],
    before: Measurement,
    after: Measurement,
    quiet: &QuietOutcome,
) -> std::io::Result<()> {
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"shard_compaction\",\n");
    json.push_str(&format!(
        "  \"scale\": {},\n  \"phases\": {PHASES},\n  \"shards\": {SHARDS},\n",
        cli.scale
    ));
    json.push_str(&format!(
        "  \"seed\": {},\n  \"segment_size\": {},\n  \"reps\": {},\n",
        cli.seed, cli.seg, cli.reps
    ));
    json.push_str(&format!(
        "  \"compact_target_factor\": {TARGET_FACTOR},\n  \"quiet_ms\": {},\n",
        quiet.quiet_ms
    ));
    json.push_str("  \"trajectory\": [\n");
    for (i, r) in trajectory.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"phase\": {}, \"shards\": {}, \"splitter_bytes\": {}}}{}\n",
            r.phase,
            r.shards,
            r.splitter_bytes,
            if i + 1 < trajectory.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let emit = |label: &str, m: Measurement| {
        format!(
            "  \"{label}\": {{\"shards\": {}, \"splitter_bytes\": {}, \"ops_per_sec\": {:.1}}},\n",
            m.shards, m.splitter_bytes, m.ops_per_sec
        )
    };
    json.push_str(&emit("before", before));
    json.push_str(&emit("after", after));
    json.push_str(&format!(
        "  \"background_consolidations\": {},\n",
        quiet.background_consolidations
    ));
    json.push_str(&format!(
        "  \"compact_merges\": {},\n",
        quiet.compact_merges
    ));
    json.push_str(&format!(
        "  \"throughput_ratio_after_vs_before\": {:.4},\n",
        after.ops_per_sec / before.ops_per_sec.max(1e-12)
    ));
    json.push_str(&format!(
        "  \"shards_after_compaction\": {}\n}}\n",
        after.shards
    ));
    std::fs::write(path, json)
}

fn main() {
    let cli = Cli::parse();
    println!(
        "# Fig. 22 — idle-time shard compaction: N={} preloaded, {} ops/phase, {PHASES} phases, {SHARDS} shards, B={}",
        cli.scale, cli.scale, cli.seg
    );

    // Pre-load with uniform keys, splitters at the preload quantiles
    // so every shard starts with an equal resident share.
    let mut base: Vec<(i64, i64)> = {
        let mut rng = SplitMix64::new(cli.seed ^ 0xB00B_5EED);
        (0..cli.scale)
            .map(|i| ((rng.next_u64() >> 2) as i64, i as i64))
            .collect()
    };
    base.sort_unstable();
    let quantiles: Vec<i64> = (1..SHARDS)
        .map(|i| base[i * base.len() / SHARDS].0)
        .collect();
    let index = Arc::new(ShardedRma::with_splitters(
        shard_config(&cli),
        Splitters::new(quantiles),
    ));
    index.apply_batch(&base, &[]);

    // --- accretion: phased hotspot, synchronous maintenance ---------
    let phase_ops = cli.scale as u64;
    let mut ops = ShiftingHotspot::new(
        HotspotConfig {
            phase_len: phase_ops,
            motion: HotspotMotion::Jump,
            ..Default::default()
        },
        cli.seed,
    );
    let mut trajectory = Vec::new();
    let half = (phase_ops / 2).max(1);
    for phase in 0..PHASES {
        index.reset_access_stats();
        let mut run_half = |n: u64| {
            for i in 0..n {
                let (k, v) = ops.next_pair();
                if i % 2 == 0 {
                    index.insert(k, v);
                } else {
                    std::hint::black_box(index.get(k));
                }
            }
        };
        run_half(half);
        index.maintain();
        run_half(phase_ops - half);
        while ops.emitted() < (phase + 1) * phase_ops {
            ops.next_key();
        }
        let engine = index.stats_snapshot();
        trajectory.push(TrajectoryRow {
            phase,
            shards: engine.num_shards,
            splitter_bytes: engine.splitter_bytes,
        });
        println!(
            "# phase {phase}: {} shards, {} splitter bytes",
            engine.num_shards, engine.splitter_bytes
        );
    }

    // --- before: routed throughput over the bloated topology --------
    let meas_ops = cli.scale.max(1024);
    let before = measure(&index, meas_ops, cli.reps, cli.seed ^ 0xFEED);
    println!(
        "# before compaction: {} shards, {} routed ops/s",
        before.shards,
        fmt_throughput(meas_ops, meas_ops as f64 / before.ops_per_sec.max(1e-12))
    );

    // --- quiet period: the idle gate does the work ------------------
    let maintainer = index.start_maintainer(maintainer_config());
    let target = (TARGET_FACTOR * SHARDS as f64).ceil() as usize;
    let quiet_start = Instant::now();
    while index.num_shards() > target && quiet_start.elapsed() < QUIET_BUDGET {
        std::thread::sleep(Duration::from_millis(5));
    }
    let quiet_ms = quiet_start.elapsed().as_millis() as u64;
    let stats = maintainer.stop();
    let background_consolidations = stats.consolidations();
    // Deterministic backstop: whatever the background maintainer left
    // behind (a slow box, an unlucky poll cadence) is finished
    // synchronously so the committed gate does not race a thread.
    let compact_merges = index.compact();
    index.check_invariants();
    println!(
        "# quiet period: {quiet_ms} ms, {background_consolidations} background consolidation merges, {compact_merges} backstop merges"
    );

    // --- after: routed throughput over the compacted topology -------
    let after = measure(&index, meas_ops, cli.reps, cli.seed ^ 0xFEED);
    println!(
        "# after compaction: {} shards, {} routed ops/s (ratio {:.3})",
        after.shards,
        fmt_throughput(meas_ops, meas_ops as f64 / after.ops_per_sec.max(1e-12)),
        after.ops_per_sec / before.ops_per_sec.max(1e-12)
    );

    let path = "BENCH_shard_compaction.json";
    let quiet = QuietOutcome {
        background_consolidations,
        compact_merges,
        quiet_ms,
    };
    match write_json(path, &cli, &trajectory, before, after, &quiet) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
