//! §V "costs of rebalances" — insertion latency percentiles and the
//! rebalance share of insertion cost.
//!
//! The paper reports: p99 insertion latency under 3 µs; the maximum
//! latency is a single resize-dominated spike; rebalances account for
//! 2% (uniform) to ~50% (highest skew) of insertion cost. This driver
//! reproduces those rows at the configured scale.

use bench_harness::{fmt_bytes, time, zipf_beta, Cli, LatencyRecorder};
use rma_core::{Rma, RmaConfig};
use workloads::{KeyStream, Pattern};

fn main() {
    let cli = Cli::parse();
    let n = cli.scale;
    let beta = zipf_beta(n);
    let patterns = [
        Pattern::Uniform,
        Pattern::Zipf { alpha: 1.5, beta },
        Pattern::Sequential,
    ];

    println!(
        "# Insertion latency and rebalance accounting — N={n}, B={}",
        cli.seg
    );
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "pattern",
        "p50[ns]",
        "p99[ns]",
        "p999[ns]",
        "max[ns]",
        "rebal",
        "resizes",
        "moved",
        "footprint"
    );
    for pattern in patterns {
        let mut rma = Rma::new(RmaConfig::with_segment_size(cli.seg));
        let mut stream = KeyStream::new(pattern, cli.seed);
        let mut lat = LatencyRecorder::new();
        for _ in 0..n {
            let (k, v) = stream.next_pair();
            let (_, secs) = time(|| rma.insert(k, v));
            lat.record((secs * 1e9) as u64);
        }
        let stats = *rma.stats();
        println!(
            "{:<14} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10} {:>12} {:>10}",
            pattern.label(),
            lat.quantile(0.5),
            lat.quantile(0.99),
            lat.quantile(0.999),
            lat.max(),
            stats.rebalances,
            stats.grows + stats.shrinks,
            stats.elements_moved,
            fmt_bytes(rma.memory_footprint())
        );
        println!(
            "{:<14} adaptive rebalances: {}, rewired commits: {}, copy commits: {}",
            "", stats.adaptive_rebalances, stats.rewired_commits, stats.copied_commits
        );
    }
}
