//! Figure 1 — the motivating overview.
//!
//! Inserts N key/value pairs per insertion pattern (uniform,
//! Zipf α=1, Zipf α=1.5, sequential) into every structure of Fig. 1,
//! then performs random contiguous scans of 1% of the content.
//! Prints insertion and scan throughput plus the speedup w.r.t. the
//! TPMA baseline (first row), i.e. the numbers on the Fig. 1 bars.
//!
//! Structure lineup: TPMA baseline, the PM14 design point (Fig. 1a
//! substitutes, see DESIGN.md), (a,b)-trees with B ∈ {64,128,256,512}
//! (Fig. 1b), RMA with B ∈ {128,256} and a static dense array
//! (Fig. 1c).

use bench_harness::stores::{
    abtree_factory, dense_from_pairs, rma_factory, tpma_factory, StoreFactory,
};
use bench_harness::{median_of, random_start_key, throughput, time, zipf_beta, Cli};
use pma_baseline::TpmaConfig;
use workloads::{KeyStream, Pattern, SplitMix64};

fn main() {
    let cli = Cli::parse();
    let n = cli.scale;
    let beta = zipf_beta(n);
    let patterns = [
        Pattern::Uniform,
        Pattern::Zipf { alpha: 1.0, beta },
        Pattern::Zipf { alpha: 1.5, beta },
        Pattern::Sequential,
    ];
    let lineup: Vec<(&str, StoreFactory)> = vec![
        ("Baseline (TPMA)", tpma_factory(TpmaConfig::traditional())),
        ("PM14 (no index)", tpma_factory(TpmaConfig::pm14())),
        ("(a,b)-tree B=64", abtree_factory(64)),
        ("(a,b)-tree B=128", abtree_factory(128)),
        ("(a,b)-tree B=256", abtree_factory(256)),
        ("(a,b)-tree B=512", abtree_factory(512)),
        ("RMA B=128", rma_factory(128, true, true)),
        ("RMA B=256", rma_factory(256, true, true)),
    ];

    println!(
        "# Fig. 1 overview — N={n}, reps={}, rewiring available: {}",
        cli.reps,
        rewiring::rewiring_available()
    );
    println!(
        "{:<18} {:>14} {:>14} {:>9} {:>9}",
        "structure", "inserts/s", "scan elems/s", "ins. spd", "scan spd"
    );
    for pattern in patterns {
        println!("\n## pattern: {}", pattern.label());
        let mut base_ins = None;
        let mut base_scan = None;
        for (name, factory) in &lineup {
            let ins = median_of(cli.reps, || {
                let mut s = factory();
                let mut stream = KeyStream::new(pattern, cli.seed);
                let (_, secs) = time(|| {
                    for _ in 0..n {
                        let (k, v) = stream.next_pair();
                        s.insert(k, v);
                    }
                });
                throughput(n, secs)
            });
            // Build once more for the scan phase.
            let mut s = factory();
            let mut stream = KeyStream::new(pattern, cli.seed);
            for _ in 0..n {
                let (k, v) = stream.next_pair();
                s.insert(k, v);
            }
            let count = (n / 100).max(1);
            let scans = 32usize;
            let scan = median_of(cli.reps, || {
                let mut rng = SplitMix64::new(cli.seed ^ 0x5CA11u64);
                let (visited, secs) = time(|| {
                    let mut visited = 0usize;
                    let mut checksum = 0i64;
                    for _ in 0..scans {
                        let start = random_start_key(pattern, &mut rng);
                        let (n, sum) = s.sum_range(start, count);
                        visited += n;
                        checksum = checksum.wrapping_add(sum);
                    }
                    std::hint::black_box(checksum);
                    visited
                });
                throughput(visited.max(1), secs)
            });
            let ins_spd = *base_ins.get_or_insert(ins);
            let scan_spd = *base_scan.get_or_insert(scan);
            println!(
                "{:<18} {:>14.3e} {:>14.3e} {:>8.2}x {:>8.2}x",
                name,
                ins,
                scan,
                ins / ins_spd,
                scan / scan_spd
            );
        }
        // Dense-array scan roofline for this pattern (Fig. 1c "Static
        // Array" bar).
        let mut stream = KeyStream::new(pattern, cli.seed);
        let pairs = stream.take_pairs(n);
        let dense = dense_from_pairs(&pairs);
        let count = (n / 100).max(1);
        let scan = median_of(cli.reps, || {
            let mut rng = SplitMix64::new(cli.seed ^ 0x5CA11u64);
            let (visited, secs) = time(|| {
                let mut visited = 0usize;
                let mut checksum = 0i64;
                for _ in 0..32 {
                    let start = random_start_key(pattern, &mut rng);
                    let (n, sum) = dense.sum_range(start, count);
                    visited += n;
                    checksum = checksum.wrapping_add(sum);
                }
                std::hint::black_box(checksum);
                visited
            });
            throughput(visited.max(1), secs)
        });
        println!(
            "{:<18} {:>14} {:>14.3e} {:>9} {:>8.2}x",
            "Static array",
            "-",
            scan,
            "-",
            scan / base_scan.unwrap_or(scan)
        );
    }
}
