//! Figure 23 (beyond the paper) — throughput of the wire-protocol
//! network front-end vs in-process pipelined sessions.
//!
//! The `rma-net` front-end serves the session router over loopback
//! TCP: length-prefixed CRC-checked frames, an epoll event loop, and
//! wire-side group commit that merges small requests from many
//! connections into one router pass. Framing, checksums and two
//! socket hops per round-trip must not eat the router's throughput:
//! this driver measures an identical 90/10 read/write uniform mix
//! against one preloaded `Db` in two shapes —
//!
//! * `pipelined` — each client thread opens a [`rma_db::Session`]
//!   and submits batches directly (fig. 19's serving shape, the
//!   in-process baseline);
//! * `networked` — each client thread opens a [`rma_net::WireClient`]
//!   over loopback and sends the same batches as request frames,
//!   keeping several correlation ids in flight, with the epoll event
//!   loop decoding into the same router.
//!
//! swept over client/connection counts. The repository's acceptance
//! bar: networked throughput at **4 connections ≥ 0.5×** the
//! in-process pipelined path — the whole wire stack (encode, CRC,
//! syscalls, event loop, decode, reply streaming) costs at most half
//! the serving capacity on this host.
//!
//! Writes `BENCH_network.json`; schema in
//! `crates/bench-harness/README.md`.

use bench_harness::{fmt_throughput, median_of, throughput, time, Cli};
use rma_core::RmaConfig;
use rma_db::{Db, Op, Ticket};
use rma_net::{NetConfig, NetServer, NetSnapshot, WireClient};
use std::collections::VecDeque;
use std::sync::Arc;
use workloads::{MixOp, ReadWriteMix, SplitMix64};

const SHARDS: usize = 8;
/// Ops per submitted batch / request frame (amortizes the channel
/// hop and the frame overhead identically).
const BATCH: usize = 1024;
/// Batches each client keeps in flight before collecting.
const DEPTH: usize = 4;
const READ_FRACTION: f64 = 0.9;
const CONN_COUNTS: [usize; 3] = [1, 2, 4];

#[derive(Clone, Copy, PartialEq, Eq)]
enum Shape {
    Pipelined,
    Networked,
}

impl Shape {
    fn label(self) -> &'static str {
        match self {
            Shape::Pipelined => "pipelined",
            Shape::Networked => "networked",
        }
    }
}

struct Row {
    shape: Shape,
    connections: usize,
    ops_per_sec: f64,
}

fn preloaded(cli: &Cli) -> Db {
    let mut base: Vec<(i64, i64)> = {
        let mut rng = SplitMix64::new(cli.seed ^ 0xB00B_5EED);
        (0..cli.scale)
            .map(|i| ((rng.next_u64() >> 2) as i64, i as i64))
            .collect()
    };
    base.sort_unstable();
    Db::builder()
        .shards(SHARDS)
        .rma(RmaConfig::with_segment_size(cli.seg))
        .build_bulk(&base)
        .expect("static driver config is valid")
}

fn mix_for(cli: &Cli, client: usize) -> ReadWriteMix<impl FnMut() -> i64> {
    let mut rng = SplitMix64::new(cli.seed ^ (0x5E55_0000 + client as u64));
    ReadWriteMix::new(
        move || (rng.next_u64() >> 2) as i64,
        READ_FRACTION,
        cli.seed ^ (0xC01D_0000 + client as u64),
    )
}

fn next_batch(mix: &mut ReadWriteMix<impl FnMut() -> i64>, len: usize, out: &mut Vec<Op>) {
    out.clear();
    for _ in 0..len {
        out.push(match mix.next_op() {
            MixOp::Read(k) => Op::Get(k),
            MixOp::Write(k, v) => Op::Insert(k, v),
        });
    }
}

fn run_pipelined(cli: &Cli, clients: usize) -> f64 {
    let per_client = (cli.scale / clients).max(1);
    median_of(cli.reps, || {
        let db = preloaded(cli);
        let (_, secs) = time(|| {
            std::thread::scope(|sc| {
                for client in 0..clients {
                    let db = &db;
                    sc.spawn(move || {
                        let mut mix = mix_for(cli, client);
                        let mut session = db.session();
                        let mut in_flight: VecDeque<Ticket> = VecDeque::new();
                        let mut batch = Vec::with_capacity(BATCH);
                        let mut submitted = 0usize;
                        while submitted < per_client {
                            next_batch(&mut mix, BATCH.min(per_client - submitted), &mut batch);
                            submitted += batch.len();
                            in_flight.push_back(session.submit(&batch));
                            if in_flight.len() >= DEPTH {
                                let replies = in_flight.pop_front().expect("non-empty").wait();
                                std::hint::black_box(replies.len());
                            }
                        }
                        for ticket in in_flight {
                            std::hint::black_box(ticket.wait().len());
                        }
                    });
                }
            });
        });
        throughput(per_client * clients, secs)
    })
}

/// Returns (ops/sec, net-stats snapshot from the run's server).
fn run_networked(cli: &Cli, clients: usize) -> (f64, NetSnapshot) {
    let per_client = (cli.scale / clients).max(1);
    let mut last_snapshot = None;
    let rate = median_of(cli.reps, || {
        let db = Arc::new(preloaded(cli));
        let srv = NetServer::spawn(Arc::clone(&db), NetConfig::default()).expect("loopback bind");
        let port = srv.port();
        let (_, secs) = time(|| {
            std::thread::scope(|sc| {
                for client in 0..clients {
                    sc.spawn(move || {
                        let mut mix = mix_for(cli, client);
                        let mut wire = WireClient::connect(port).expect("client connect");
                        let mut batch = Vec::with_capacity(BATCH);
                        let mut submitted = 0usize;
                        while submitted < per_client {
                            next_batch(&mut mix, BATCH.min(per_client - submitted), &mut batch);
                            submitted += batch.len();
                            wire.send(&batch).expect("send");
                            while wire.in_flight() >= DEPTH {
                                let done = wire.recv().expect("recv");
                                std::hint::black_box(done.replies.len());
                            }
                        }
                        while wire.in_flight() > 0 {
                            let done = wire.recv().expect("drain");
                            std::hint::black_box(done.replies.len());
                        }
                    });
                }
            });
        });
        last_snapshot = Some(srv.stats());
        throughput(per_client * clients, secs)
    });
    (rate, last_snapshot.expect("at least one rep ran"))
}

fn write_json(
    path: &str,
    rows: &[Row],
    net: &NetSnapshot,
    cli: &Cli,
    workers: usize,
    hw: usize,
) -> std::io::Result<()> {
    let rate = |shape: Shape, connections: usize| {
        rows.iter()
            .find(|r| r.shape == shape && r.connections == connections)
            .map(|r| r.ops_per_sec)
            .unwrap_or(f64::NAN)
    };
    let max_conns = *CONN_COUNTS.last().expect("non-empty sweep");
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"network\",\n");
    json.push_str(&format!(
        "  \"scale\": {},\n  \"ops_per_sweep\": {},\n  \"batch\": {BATCH},\n  \"depth\": {DEPTH},\n",
        cli.scale, cli.scale
    ));
    json.push_str(&format!(
        "  \"read_fraction\": {READ_FRACTION},\n  \"shards\": {SHARDS},\n  \"router_workers\": {workers},\n"
    ));
    json.push_str(&format!(
        "  \"seed\": {},\n  \"segment_size\": {},\n  \"reps\": {},\n  \"hw_threads\": {hw},\n",
        cli.seed, cli.seg, cli.reps
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"connections\": {}, \"ops_per_sec\": {:.1}}}{}\n",
            r.shape.label(),
            r.connections,
            r.ops_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"net_{max_conns}c\": {{\"frames_in\": {}, \"frames_out\": {}, \"bytes_in\": {}, \
         \"bytes_out\": {}, \"merged_submits\": {}, \"merged_requests\": {}, \
         \"backpressure_pauses\": {}, \"decode_errors\": {}}},\n",
        net.frames_in,
        net.frames_out,
        net.bytes_in,
        net.bytes_out,
        net.merged_submits,
        net.merged_requests,
        net.backpressure_pauses,
        net.decode_errors,
    ));
    json.push_str(&format!(
        "  \"ratio_networked_vs_pipelined_{max_conns}c\": {:.4},\n",
        rate(Shape::Networked, max_conns) / rate(Shape::Pipelined, max_conns)
    ));
    json.push_str(&format!(
        "  \"ratio_networked_vs_pipelined_1c\": {:.4},\n",
        rate(Shape::Networked, 1) / rate(Shape::Pipelined, 1)
    ));
    json.push_str(&format!("  \"ratio_bar_{max_conns}c\": 0.5\n}}\n"));
    std::fs::write(path, json)
}

fn main() {
    let cli = Cli::parse();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    // One throwaway build reports the resolved worker count.
    let workers = preloaded(&Cli {
        scale: 16,
        ..cli.clone()
    })
    .stats()
    .router
    .workers;
    println!(
        "# Fig. 23 — network front-end throughput: N={} preloaded, N mixed ops ({} reads), {SHARDS} shards, {workers} router workers, batch {BATCH}, depth {DEPTH}, B={}, hw_threads={hw}",
        cli.scale, READ_FRACTION, cli.seg
    );
    print!("{:<11}", "mode");
    for c in CONN_COUNTS {
        print!(" {:>15}", format!("{c} connection(s)"));
    }
    println!();

    let mut rows = Vec::new();
    let mut net_at_max: Option<NetSnapshot> = None;
    for shape in [Shape::Pipelined, Shape::Networked] {
        print!("{:<11}", shape.label());
        for connections in CONN_COUNTS {
            let rate = match shape {
                Shape::Pipelined => run_pipelined(&cli, connections),
                Shape::Networked => {
                    let (rate, snap) = run_networked(&cli, connections);
                    if connections == *CONN_COUNTS.last().expect("non-empty") {
                        net_at_max = Some(snap);
                    }
                    rate
                }
            };
            print!(" {:>15}", fmt_throughput(rate as usize, 1.0).trim());
            rows.push(Row {
                shape,
                connections,
                ops_per_sec: rate,
            });
        }
        println!();
    }
    let rate = |shape: Shape, connections: usize| {
        rows.iter()
            .find(|r| r.shape == shape && r.connections == connections)
            .map(|r| r.ops_per_sec)
            .unwrap_or(0.0)
    };
    let max_conns = *CONN_COUNTS.last().expect("non-empty sweep");
    println!(
        "# networked/pipelined throughput ratio at {max_conns} connections: {:.3} (bar: >= 0.5)",
        rate(Shape::Networked, max_conns) / rate(Shape::Pipelined, max_conns).max(1e-9)
    );
    let net = net_at_max.expect("networked sweep ran");
    println!(
        "# wire at {max_conns} connections: {} frames in, {} merged submits covering {} requests, {} decode errors",
        net.frames_in, net.merged_submits, net.merged_requests, net.decode_errors
    );

    let path = "BENCH_network.json";
    match write_json(path, &rows, &net, &cli, workers, hw) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
