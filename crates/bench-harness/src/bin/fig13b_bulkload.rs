//! Figure 13b — bulk loading.
//!
//! Fills the RMA with N/2 uniform elements, then loads N/2 more in
//! batches of ~1% of the structure, drawn uniform or Zipf(α), and
//! reports the per-element load throughput for:
//!
//! * `RMA` — element-wise insertions (no batching);
//! * `Bottom up -RWR` — the paper's bottom-up scheme, rewiring off;
//! * `Bottom up +RWR` — the same with memory rewiring;
//! * `Top down` — the DRF12 top-down scheme.

use bench_harness::{throughput, time, zipf_beta, Cli};
use rma_core::{Rma, RmaConfig};
use workloads::{KeyStream, Pattern};

fn alphas() -> Vec<Option<f64>> {
    vec![
        None,
        Some(0.5),
        Some(1.0),
        Some(1.5),
        Some(2.0),
        Some(2.5),
        Some(3.0),
    ]
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Single,
    BottomUpNoRwr,
    BottomUpRwr,
    TopDown,
}

fn main() {
    let cli = Cli::parse();
    let n = cli.scale;
    let base_n = n / 2;
    let batch_len = (base_n / 100).max(1);
    let beta = zipf_beta(n);

    println!(
        "# Fig. 13b — base={base_n}, loading {} more in batches of {batch_len}, B={}, rewiring available: {}",
        n - base_n,
        cli.seg,
        rewiring::rewiring_available()
    );
    print!("{:<18}", "loader");
    for a in alphas() {
        print!(" {:>11}", a.map_or("unif".into(), |a| format!("a={a}")));
    }
    println!();

    let modes = [
        ("RMA (singles)", Mode::Single),
        ("Bottom up -RWR", Mode::BottomUpNoRwr),
        ("Bottom up +RWR", Mode::BottomUpRwr),
        ("Top down", Mode::TopDown),
    ];
    for (name, mode) in modes {
        print!("{name:<18}");
        for alpha in alphas() {
            let pattern = match alpha {
                None => Pattern::Uniform,
                Some(a) => Pattern::Zipf { alpha: a, beta },
            };
            let rewired = mode == Mode::BottomUpRwr || mode == Mode::Single;
            let mut rma = Rma::new(RmaConfig::with_segment_size(cli.seg).rewired(rewired));
            // Pre-fill with uniform data.
            let mut base_stream = KeyStream::new(Pattern::Uniform, cli.seed);
            for _ in 0..base_n {
                let (k, v) = base_stream.next_pair();
                rma.insert(k, v);
            }
            // Load the second half in sorted batches.
            let mut stream = KeyStream::new(pattern, cli.seed ^ 0xB);
            let mut loaded = 0usize;
            let (_, secs) = time(|| {
                while loaded < n - base_n {
                    let take = batch_len.min(n - base_n - loaded);
                    let mut batch = stream.take_pairs(take);
                    batch.sort_unstable();
                    match mode {
                        Mode::Single => {
                            for &(k, v) in &batch {
                                rma.insert(k, v);
                            }
                        }
                        Mode::BottomUpNoRwr | Mode::BottomUpRwr => rma.load_bulk(&batch),
                        Mode::TopDown => rma.load_bulk_top_down(&batch),
                    }
                    loaded += take;
                }
            });
            assert_eq!(rma.len(), n);
            print!(" {:>11.3e}", throughput(n - base_n, secs));
        }
        println!();
    }
}
