//! Figure 10 — node/segment size sweep: ART vs RMA vs dense array.
//!
//! a) insertion throughput while the structure grows (checkpoints at
//!    N/64, N/16, N/4, N);
//! b) point-lookup throughput for random *existing* keys;
//! c) scan throughput per element for intervals from 0.1% to 100%.
//!
//! Sweeps B ∈ {32, 128, 512, 2048} for both ART and RMA, exactly as
//! the paper's legend.

use bench_harness::stores::{art_factory, dense_from_pairs, rma_factory, StoreFactory};
use bench_harness::{median_of, throughput, time, Cli};
use workloads::{KeyStream, Pattern, SplitMix64};

fn main() {
    let cli = Cli::parse();
    let n = cli.scale;
    let sizes = [32usize, 128, 512, 2048];
    let lineup: Vec<(String, StoreFactory)> = sizes
        .iter()
        .flat_map(|&b| {
            [
                (format!("ART B={b}"), art_factory(b)),
                (format!("RMA B={b}"), rma_factory(b, true, true)),
            ]
        })
        .collect();
    let checkpoints: Vec<usize> = vec![n / 64, n / 16, n / 4, n];

    println!("# Fig. 10 — N={n}, uniform inserts, reps={}", cli.reps);

    // ---- a) insertion throughput at increasing sizes --------------
    println!("\n## a) insertion throughput [elts/s] at size checkpoints");
    print!("{:<14}", "structure");
    for c in &checkpoints {
        print!(" {:>12}", format!("@{c}"));
    }
    println!();
    for (name, factory) in &lineup {
        let mut s = factory();
        let mut stream = KeyStream::new(Pattern::Uniform, cli.seed);
        print!("{name:<14}");
        let mut done = 0usize;
        for &c in &checkpoints {
            let batch = c - done;
            let (_, secs) = time(|| {
                for _ in 0..batch {
                    let (k, v) = stream.next_pair();
                    s.insert(k, v);
                }
            });
            done = c;
            print!(" {:>12.3e}", throughput(batch, secs));
        }
        println!();
    }

    // ---- b) point lookups ------------------------------------------
    println!("\n## b) lookup throughput [elts/s], random existing keys");
    let lookups = (n / 4).max(1);
    for (name, factory) in &lineup {
        let mut s = factory();
        let mut stream = KeyStream::new(Pattern::Uniform, cli.seed);
        let mut keys = Vec::with_capacity(n);
        for _ in 0..n {
            let (k, v) = stream.next_pair();
            s.insert(k, v);
            keys.push(k);
        }
        let tput = median_of(cli.reps, || {
            let mut rng = SplitMix64::new(cli.seed ^ 0x100C);
            let (hits, secs) = time(|| {
                let mut hits = 0usize;
                for _ in 0..lookups {
                    let k = keys[rng.next_below(keys.len() as u64) as usize];
                    hits += usize::from(s.get(k).is_some());
                }
                hits
            });
            assert_eq!(hits, lookups, "{name}: lookups must all hit");
            throughput(lookups, secs)
        });
        println!("{name:<14} {tput:>12.3e}");
    }

    // ---- c) scans at growing intervals ------------------------------
    println!("\n## c) scan throughput [elts/s] per interval fraction");
    let fractions = [0.001, 0.01, 0.05, 0.25, 1.0];
    print!("{:<14}", "structure");
    for f in fractions {
        print!(" {:>12}", format!("{}%", f * 100.0));
    }
    println!();
    let mut dense_pairs = Vec::new();
    for (name, factory) in &lineup {
        let mut s = factory();
        let mut stream = KeyStream::new(Pattern::Uniform, cli.seed);
        for _ in 0..n {
            let (k, v) = stream.next_pair();
            s.insert(k, v);
        }
        if dense_pairs.is_empty() {
            let mut st = KeyStream::new(Pattern::Uniform, cli.seed);
            dense_pairs = st.take_pairs(n);
        }
        print!("{name:<14}");
        for f in fractions {
            let count = ((n as f64 * f) as usize).max(1);
            let scans = (8.0 / f).clamp(1.0, 64.0) as usize;
            let tput = median_of(cli.reps, || {
                let mut rng = SplitMix64::new(cli.seed ^ 0x5CA2);
                let (visited, secs) = time(|| {
                    let mut visited = 0usize;
                    let mut checksum = 0i64;
                    for _ in 0..scans {
                        let start = (rng.next_u64() >> 2) as i64;
                        let (n, sum) = s.sum_range(start, count);
                        visited += n;
                        checksum = checksum.wrapping_add(sum);
                    }
                    std::hint::black_box(checksum);
                    visited
                });
                throughput(visited.max(1), secs)
            });
            print!(" {tput:>12.3e}");
        }
        println!();
    }
    // Dense roofline.
    let dense = dense_from_pairs(&dense_pairs);
    print!("{:<14}", "Dense array");
    for f in fractions {
        let count = ((n as f64 * f) as usize).max(1);
        let scans = (8.0 / f).clamp(1.0, 64.0) as usize;
        let tput = median_of(cli.reps, || {
            let mut rng = SplitMix64::new(cli.seed ^ 0x5CA2);
            let (visited, secs) = time(|| {
                let mut visited = 0usize;
                let mut checksum = 0i64;
                for _ in 0..scans {
                    let start = (rng.next_u64() >> 2) as i64;
                    let (n, sum) = dense.sum_range(start, count);
                    visited += n;
                    checksum = checksum.wrapping_add(sum);
                }
                std::hint::black_box(checksum);
                visited
            });
            throughput(visited.max(1), secs)
        });
        print!(" {tput:>12.3e}");
    }
    println!();
}
