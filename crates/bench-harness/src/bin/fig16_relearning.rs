//! Figure 16 (beyond the paper) — online splitter re-learning under a
//! shifting hotspot.
//!
//! Drives a [`rma_shard::ShardedRma`] with the seeded shifting-hotspot workload
//! (a hammered band covering 1/64th of the key domain that jumps to a
//! fresh position every phase) and compares maintenance modes over
//! the same operation stream:
//!
//! * `median_baseline` — PR 1 behaviour: length-driven split/merge at
//!   the key median, no re-learning ([`BalancePolicy::ByLen`]);
//! * `relearn` — access-driven maintenance: split points from the
//!   histogram CDF plus multi-way splitter re-learning
//!   ([`rma_shard::ShardedRma::relearn_splitters`], incremental plan engine);
//! * `nudge` (drift phase set only) — [`RelearnStrategy::NudgeOnly`]:
//!   boundaries chase the band via single-pair migrations, never a
//!   full rebuild — the cheap tracking mode a *drifting* hotspot
//!   should reward;
//! * `compact` (jump phase set only) — as `relearn`, plus the
//!   idle-time consolidation chain run in the quiet period at every
//!   phase boundary, so the split accretion cannot ratchet the shard
//!   count phase over phase.
//!
//! Each phase runs half its operations, calls
//! [`maintain`](rma_shard::ShardedRma::maintain), resets the (measurement)
//! histograms, runs the second half, and records the max/mean shard
//! access imbalance of that second half — i.e. how well the topology
//! fits the *current* hotspot after maintenance had one chance to
//! adapt. `imbalance_before` is the imbalance observed at the
//! maintenance point (how skewed the phase's first half was).
//!
//! Writes `BENCH_splitter_relearning.json`; the schema is documented
//! in `crates/bench-harness/README.md`.

use bench_harness::Cli;
use rma_core::RmaConfig;
use rma_db::Db;
use rma_shard::{BalancePolicy, RelearnStrategy, ShardConfig};
use workloads::{HotspotConfig, HotspotMotion, ShiftingHotspot, SplitMix64};

const SHARDS: usize = 8;
const PHASES: u64 = 6;

#[derive(Clone, Copy)]
struct PhaseRow {
    phase: u64,
    imbalance_before: f64,
    imbalance_after: f64,
    relearned: bool,
    splits: usize,
    merges: usize,
    nudges: u64,
    shards: usize,
}

/// Maintenance mode of one run.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `median_baseline`: ByLen, no re-learning.
    Baseline,
    /// `relearn`: ByAccess + incremental multi-way re-learning.
    Relearn,
    /// `nudge`: ByAccess + boundary nudges only.
    Nudge,
    /// `compact`: as `relearn`, plus the idle-time consolidation
    /// chain ([`rma_shard::ShardedRma::compact`]) in the quiet period
    /// at each phase boundary — the anti-ratchet mode.
    Compact,
}

fn mode_config(cli: &Cli, mode: Mode) -> ShardConfig {
    ShardConfig {
        num_shards: SHARDS,
        rma: RmaConfig::with_segment_size(cli.seg),
        min_split_len: 256,
        relearn: mode != Mode::Baseline,
        balance: if mode == Mode::Baseline {
            BalancePolicy::ByLen
        } else {
            BalancePolicy::ByAccess
        },
        relearn_strategy: if mode == Mode::Nudge {
            RelearnStrategy::NudgeOnly
        } else {
            RelearnStrategy::Incremental
        },
        ..Default::default()
    }
}

fn run_mode(cli: &Cli, mode: Mode, motion: HotspotMotion) -> Vec<PhaseRow> {
    let phase_ops = cli.scale as u64;
    let hotspot_cfg = HotspotConfig {
        phase_len: phase_ops,
        motion,
        ..Default::default()
    };
    let mut ops = ShiftingHotspot::new(hotspot_cfg, cli.seed);

    // Pre-load with uniform keys so every shard starts with residents.
    let mut base: Vec<(i64, i64)> = {
        let mut rng = SplitMix64::new(cli.seed ^ 0xB00B_5EED);
        (0..cli.scale)
            .map(|i| ((rng.next_u64() >> 2) as i64, i as i64))
            .collect()
    };
    base.sort_unstable();
    let db = Db::builder()
        .shard_config(mode_config(cli, mode))
        .router_workers(1) // engine-only driver: no session traffic
        .build_bulk(&base)
        .expect("static driver config is valid");
    let index = db.engine();

    let mut rows = Vec::new();
    let half = (phase_ops / 2).max(1);
    for phase in 0..PHASES {
        // Scope the access signal to this phase: maintenance decides
        // from the current hotspot only, and the post-maintenance
        // measurement attributes mass to this phase alone.
        index.reset_access_stats();
        let mut run_half = |n: u64| {
            for i in 0..n {
                let (k, v) = ops.next_pair();
                if i % 2 == 0 {
                    index.insert(k, v);
                } else {
                    std::hint::black_box(index.get(k));
                }
            }
        };
        run_half(half);
        let imbalance_before = index.access_imbalance();
        let nudges_before = index.maintenance_stats().nudges;
        let (rl, mt) = index.maintain();
        index.reset_access_stats();
        run_half(phase_ops - half);
        let imbalance_after = index.access_imbalance();
        // Compact mode: the phase boundary is a quiet period — run
        // the consolidation chain there, exactly where the background
        // maintainer's idle gate would, so the accreted split count
        // cannot ratchet phase over phase.
        if mode == Mode::Compact {
            index.compact();
        }
        rows.push(PhaseRow {
            phase,
            imbalance_before,
            imbalance_after,
            relearned: rl.relearned,
            splits: mt.splits,
            merges: mt.merges,
            nudges: index.maintenance_stats().nudges - nudges_before,
            shards: index.num_shards(),
        });
        // Drain the remainder of the phase's ops so both modes stay
        // aligned with the generator's phase boundaries.
        while ops.emitted() < (phase + 1) * phase_ops {
            ops.next_key();
        }
        index.check_invariants();
    }
    rows
}

fn mean_after(rows: &[PhaseRow]) -> f64 {
    rows.iter().map(|r| r.imbalance_after).sum::<f64>() / rows.len() as f64
}

fn write_json(path: &str, modes: &[(&str, &[PhaseRow])], cli: &Cli) -> std::io::Result<()> {
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"splitter_relearning\",\n");
    json.push_str(&format!(
        "  \"scale\": {},\n  \"phases\": {PHASES},\n  \"shards\": {SHARDS},\n",
        cli.scale
    ));
    json.push_str(&format!(
        "  \"seed\": {},\n  \"segment_size\": {},\n",
        cli.seed, cli.seg
    ));
    json.push_str("  \"hot_fraction\": 0.9,\n  \"hot_width_frac\": 0.015625,\n");
    json.push_str("  \"results\": [\n");
    let total_rows: usize = modes.iter().map(|(_, r)| r.len()).sum();
    let mut emitted = 0usize;
    for (mode, rows) in modes {
        for r in *rows {
            emitted += 1;
            json.push_str(&format!(
                "    {{\"mode\": \"{mode}\", \"phase\": {}, \"imbalance_before\": {:.4}, \
                 \"imbalance_after\": {:.4}, \"relearned\": {}, \"splits\": {}, \
                 \"merges\": {}, \"nudges\": {}, \"shards\": {}}}{}\n",
                r.phase,
                r.imbalance_before,
                r.imbalance_after,
                r.relearned,
                r.splits,
                r.merges,
                r.nudges,
                r.shards,
                if emitted < total_rows { "," } else { "" }
            ));
        }
    }
    json.push_str("  ],\n");
    let mean_of = |label: &str| {
        modes
            .iter()
            .find(|(m, _)| *m == label)
            .map(|(_, rows)| mean_after(rows))
            .expect("mode present")
    };
    let base = mean_of("median_baseline");
    let relearn = mean_of("relearn");
    json.push_str(&format!(
        "  \"mean_imbalance_baseline\": {base:.4},\n  \"mean_imbalance_relearn\": {relearn:.4},\n"
    ));
    json.push_str(&format!(
        "  \"imbalance_ratio\": {:.4},\n",
        relearn / base.max(1e-12)
    ));
    let compact = mean_of("compact");
    let compact_final_shards = modes
        .iter()
        .find(|(m, _)| *m == "compact")
        .and_then(|(_, rows)| rows.last())
        .map(|r| r.shards)
        .expect("compact mode present");
    json.push_str(&format!(
        "  \"mean_imbalance_compact\": {compact:.4},\n  \"compact_final_shards\": {compact_final_shards},\n"
    ));
    json.push_str(&format!(
        "  \"imbalance_ratio_compact\": {:.4},\n",
        compact / base.max(1e-12)
    ));
    let base_drift = mean_of("median_baseline_drift");
    let relearn_drift = mean_of("relearn_drift");
    let nudge_drift = mean_of("nudge_drift");
    json.push_str(&format!(
        "  \"mean_imbalance_baseline_drift\": {base_drift:.4},\n  \"mean_imbalance_relearn_drift\": {relearn_drift:.4},\n"
    ));
    json.push_str(&format!(
        "  \"mean_imbalance_nudge_drift\": {nudge_drift:.4},\n"
    ));
    json.push_str(&format!(
        "  \"imbalance_ratio_drift\": {:.4},\n",
        relearn_drift / base_drift.max(1e-12)
    ));
    json.push_str(&format!(
        "  \"imbalance_ratio_nudge_drift\": {:.4},\n",
        nudge_drift / base_drift.max(1e-12)
    ));
    json.push_str(&format!(
        "  \"nudge_vs_relearn_drift\": {:.4}\n}}\n",
        nudge_drift / relearn_drift.max(1e-12)
    ));
    std::fs::write(path, json)
}

/// Drift step: half a hot-band width per phase, so the band slides
/// incrementally instead of jumping — the case where learned
/// splitters should stay approximately right between re-learns.
fn drift_step() -> HotspotMotion {
    let width = HotspotConfig::default().hot_width;
    HotspotMotion::Drift { step: width / 2 }
}

fn main() {
    let cli = Cli::parse();
    println!(
        "# Fig. 16 — splitter re-learning under a shifting hotspot: N={} preloaded, {} ops/phase, {PHASES} phases, {SHARDS} shards, B={}",
        cli.scale, cli.scale, cli.seg
    );
    let baseline = run_mode(&cli, Mode::Baseline, HotspotMotion::Jump);
    let relearn = run_mode(&cli, Mode::Relearn, HotspotMotion::Jump);
    let compact = run_mode(&cli, Mode::Compact, HotspotMotion::Jump);
    let baseline_drift = run_mode(&cli, Mode::Baseline, drift_step());
    let relearn_drift = run_mode(&cli, Mode::Relearn, drift_step());
    let nudge_drift = run_mode(&cli, Mode::Nudge, drift_step());

    println!(
        "{:<7} {:>14} {:>14} {:>14} {:>14} {:>10}",
        "phase", "base before", "base after", "rl before", "rl after", "topology"
    );
    for (b, r) in baseline.iter().zip(&relearn) {
        println!(
            "{:<7} {:>14.2} {:>14.2} {:>14.2} {:>14.2} {:>10}",
            b.phase,
            b.imbalance_before,
            b.imbalance_after,
            r.imbalance_before,
            r.imbalance_after,
            format!(
                "{}{}s{}m",
                if r.relearned { "R" } else { "-" },
                r.splits,
                r.merges
            )
        );
    }
    let (mb, mr) = (mean_after(&baseline), mean_after(&relearn));
    println!(
        "# mean post-maintenance imbalance (jump): baseline {mb:.2}, relearn {mr:.2}, ratio {:.3}",
        mr / mb.max(1e-12)
    );
    println!(
        "# compact mode (jump): mean imbalance {:.2}, final shards {} (relearn ends at {})",
        mean_after(&compact),
        compact.last().map_or(0, |r| r.shards),
        relearn.last().map_or(0, |r| r.shards)
    );
    let (db, dr, dn) = (
        mean_after(&baseline_drift),
        mean_after(&relearn_drift),
        mean_after(&nudge_drift),
    );
    println!(
        "# mean post-maintenance imbalance (drift): baseline {db:.2}, relearn {dr:.2} (ratio {:.3}), nudge {dn:.2} (ratio {:.3})",
        dr / db.max(1e-12),
        dn / db.max(1e-12)
    );

    let path = "BENCH_splitter_relearning.json";
    match write_json(
        path,
        &[
            ("median_baseline", &baseline),
            ("relearn", &relearn),
            ("compact", &compact),
            ("median_baseline_drift", &baseline_drift),
            ("relearn_drift", &relearn_drift),
            ("nudge_drift", &nudge_drift),
        ],
        &cli,
    ) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
