//! Figure 16 (beyond the paper) — online splitter re-learning under a
//! shifting hotspot.
//!
//! Drives a [`ShardedRma`] with the seeded shifting-hotspot workload
//! (a hammered band covering 1/64th of the key domain that jumps to a
//! fresh position every phase) and compares two maintenance modes
//! over the same operation stream:
//!
//! * `median_baseline` — PR 1 behaviour: length-driven split/merge at
//!   the key median, no re-learning ([`BalancePolicy::ByLen`]);
//! * `relearn` — access-driven maintenance: split points from the
//!   histogram CDF plus multi-way splitter re-learning
//!   ([`ShardedRma::relearn_splitters`]).
//!
//! Each phase runs half its operations, calls
//! [`maintain`](ShardedRma::maintain), resets the (measurement)
//! histograms, runs the second half, and records the max/mean shard
//! access imbalance of that second half — i.e. how well the topology
//! fits the *current* hotspot after maintenance had one chance to
//! adapt. `imbalance_before` is the imbalance observed at the
//! maintenance point (how skewed the phase's first half was).
//!
//! Writes `BENCH_splitter_relearning.json`; the schema is documented
//! in `crates/bench-harness/README.md`.

use bench_harness::Cli;
use rma_core::RmaConfig;
use rma_shard::{BalancePolicy, ShardConfig, ShardedRma};
use workloads::{HotspotConfig, HotspotMotion, ShiftingHotspot, SplitMix64};

const SHARDS: usize = 8;
const PHASES: u64 = 6;

#[derive(Clone, Copy)]
struct PhaseRow {
    phase: u64,
    imbalance_before: f64,
    imbalance_after: f64,
    relearned: bool,
    splits: usize,
    merges: usize,
    shards: usize,
}

fn mode_config(cli: &Cli, relearn: bool) -> ShardConfig {
    ShardConfig {
        num_shards: SHARDS,
        rma: RmaConfig::with_segment_size(cli.seg),
        min_split_len: 256,
        relearn,
        balance: if relearn {
            BalancePolicy::ByAccess
        } else {
            BalancePolicy::ByLen
        },
        ..Default::default()
    }
}

fn run_mode(cli: &Cli, relearn: bool, motion: HotspotMotion) -> Vec<PhaseRow> {
    let phase_ops = cli.scale as u64;
    let hotspot_cfg = HotspotConfig {
        phase_len: phase_ops,
        motion,
        ..Default::default()
    };
    let mut ops = ShiftingHotspot::new(hotspot_cfg, cli.seed);

    // Pre-load with uniform keys so every shard starts with residents.
    let mut base: Vec<(i64, i64)> = {
        let mut rng = SplitMix64::new(cli.seed ^ 0xB00B_5EED);
        (0..cli.scale)
            .map(|i| ((rng.next_u64() >> 2) as i64, i as i64))
            .collect()
    };
    base.sort_unstable();
    let index = ShardedRma::load_bulk(mode_config(cli, relearn), &base);

    let mut rows = Vec::new();
    let half = (phase_ops / 2).max(1);
    for phase in 0..PHASES {
        // Scope the access signal to this phase: maintenance decides
        // from the current hotspot only, and the post-maintenance
        // measurement attributes mass to this phase alone.
        index.reset_access_stats();
        let mut run_half = |n: u64| {
            for i in 0..n {
                let (k, v) = ops.next_pair();
                if i % 2 == 0 {
                    index.insert(k, v);
                } else {
                    std::hint::black_box(index.get(k));
                }
            }
        };
        run_half(half);
        let imbalance_before = index.access_imbalance();
        let (rl, mt) = index.maintain();
        index.reset_access_stats();
        run_half(phase_ops - half);
        rows.push(PhaseRow {
            phase,
            imbalance_before,
            imbalance_after: index.access_imbalance(),
            relearned: rl.relearned,
            splits: mt.splits,
            merges: mt.merges,
            shards: index.num_shards(),
        });
        // Drain the remainder of the phase's ops so both modes stay
        // aligned with the generator's phase boundaries.
        while ops.emitted() < (phase + 1) * phase_ops {
            ops.next_key();
        }
        index.check_invariants();
    }
    rows
}

fn mean_after(rows: &[PhaseRow]) -> f64 {
    rows.iter().map(|r| r.imbalance_after).sum::<f64>() / rows.len() as f64
}

fn write_json(path: &str, modes: &[(&str, &[PhaseRow])], cli: &Cli) -> std::io::Result<()> {
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"splitter_relearning\",\n");
    json.push_str(&format!(
        "  \"scale\": {},\n  \"phases\": {PHASES},\n  \"shards\": {SHARDS},\n",
        cli.scale
    ));
    json.push_str(&format!(
        "  \"seed\": {},\n  \"segment_size\": {},\n",
        cli.seed, cli.seg
    ));
    json.push_str("  \"hot_fraction\": 0.9,\n  \"hot_width_frac\": 0.015625,\n");
    json.push_str("  \"results\": [\n");
    let total_rows: usize = modes.iter().map(|(_, r)| r.len()).sum();
    let mut emitted = 0usize;
    for (mode, rows) in modes {
        for r in *rows {
            emitted += 1;
            json.push_str(&format!(
                "    {{\"mode\": \"{mode}\", \"phase\": {}, \"imbalance_before\": {:.4}, \
                 \"imbalance_after\": {:.4}, \"relearned\": {}, \"splits\": {}, \
                 \"merges\": {}, \"shards\": {}}}{}\n",
                r.phase,
                r.imbalance_before,
                r.imbalance_after,
                r.relearned,
                r.splits,
                r.merges,
                r.shards,
                if emitted < total_rows { "," } else { "" }
            ));
        }
    }
    json.push_str("  ],\n");
    let base = mean_after(modes[0].1);
    let relearn = mean_after(modes[1].1);
    json.push_str(&format!(
        "  \"mean_imbalance_baseline\": {base:.4},\n  \"mean_imbalance_relearn\": {relearn:.4},\n"
    ));
    json.push_str(&format!(
        "  \"imbalance_ratio\": {:.4},\n",
        relearn / base.max(1e-12)
    ));
    let base_drift = mean_after(modes[2].1);
    let relearn_drift = mean_after(modes[3].1);
    json.push_str(&format!(
        "  \"mean_imbalance_baseline_drift\": {base_drift:.4},\n  \"mean_imbalance_relearn_drift\": {relearn_drift:.4},\n"
    ));
    json.push_str(&format!(
        "  \"imbalance_ratio_drift\": {:.4}\n}}\n",
        relearn_drift / base_drift.max(1e-12)
    ));
    std::fs::write(path, json)
}

/// Drift step: half a hot-band width per phase, so the band slides
/// incrementally instead of jumping — the case where learned
/// splitters should stay approximately right between re-learns.
fn drift_step() -> HotspotMotion {
    let width = HotspotConfig::default().hot_width;
    HotspotMotion::Drift { step: width / 2 }
}

fn main() {
    let cli = Cli::parse();
    println!(
        "# Fig. 16 — splitter re-learning under a shifting hotspot: N={} preloaded, {} ops/phase, {PHASES} phases, {SHARDS} shards, B={}",
        cli.scale, cli.scale, cli.seg
    );
    let baseline = run_mode(&cli, false, HotspotMotion::Jump);
    let relearn = run_mode(&cli, true, HotspotMotion::Jump);
    let baseline_drift = run_mode(&cli, false, drift_step());
    let relearn_drift = run_mode(&cli, true, drift_step());

    println!(
        "{:<7} {:>14} {:>14} {:>14} {:>14} {:>10}",
        "phase", "base before", "base after", "rl before", "rl after", "topology"
    );
    for (b, r) in baseline.iter().zip(&relearn) {
        println!(
            "{:<7} {:>14.2} {:>14.2} {:>14.2} {:>14.2} {:>10}",
            b.phase,
            b.imbalance_before,
            b.imbalance_after,
            r.imbalance_before,
            r.imbalance_after,
            format!(
                "{}{}s{}m",
                if r.relearned { "R" } else { "-" },
                r.splits,
                r.merges
            )
        );
    }
    let (mb, mr) = (mean_after(&baseline), mean_after(&relearn));
    println!(
        "# mean post-maintenance imbalance (jump): baseline {mb:.2}, relearn {mr:.2}, ratio {:.3}",
        mr / mb.max(1e-12)
    );
    let (db, dr) = (mean_after(&baseline_drift), mean_after(&relearn_drift));
    println!(
        "# mean post-maintenance imbalance (drift): baseline {db:.2}, relearn {dr:.2}, ratio {:.3}",
        dr / db.max(1e-12)
    );

    let path = "BENCH_splitter_relearning.json";
    match write_json(
        path,
        &[
            ("median_baseline", &baseline),
            ("relearn", &relearn),
            ("median_baseline_drift", &baseline_drift),
            ("relearn_drift", &relearn_drift),
        ],
        &cli,
    ) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
