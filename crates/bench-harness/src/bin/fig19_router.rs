//! Figure 19 (beyond the paper) — throughput of the session-pipelined
//! request router vs direct engine calls.
//!
//! The `rma-db` facade routes typed operations through channel-fed,
//! shard-affine worker threads so one process can serve many
//! pipelined clients. That indirection must not eat the engine's
//! throughput: this driver measures an identical 90/10 read/write
//! uniform mix against one preloaded `Db` in two shapes —
//!
//! * `direct` — each client thread calls `Db::get` / `Db::insert`
//!   synchronously (the embedded-library shape);
//! * `pipelined` — each client thread opens a [`rma_db::Session`], submits
//!   the same operations in batches and keeps several tickets in
//!   flight, with the router workers executing (the serving shape).
//!
//! swept over client counts. The repository's acceptance bar:
//! pipelined throughput at **1 session ≥ 0.8×** the direct path on
//! this 1-core host — the router's per-op overhead (routing, channel
//! hop, ticket fill) stays bounded. On multi-core hosts the pipelined
//! path additionally overlaps client batch-building with worker
//! execution.
//!
//! Writes `BENCH_router_throughput.json`; schema in
//! `crates/bench-harness/README.md`.

use bench_harness::{fmt_throughput, median_of, throughput, time, Cli};
use rma_core::RmaConfig;
use rma_db::{Db, Op, Ticket};
use std::collections::VecDeque;
use workloads::{MixOp, ReadWriteMix, SplitMix64};

const SHARDS: usize = 8;
/// Ops per submitted batch (amortizes the channel hop).
const BATCH: usize = 1024;
/// Tickets each session keeps in flight before collecting.
const DEPTH: usize = 4;
const READ_FRACTION: f64 = 0.9;
const SESSION_COUNTS: [usize; 3] = [1, 2, 4];

#[derive(Clone, Copy, PartialEq, Eq)]
enum Shape {
    Direct,
    Pipelined,
}

impl Shape {
    fn label(self) -> &'static str {
        match self {
            Shape::Direct => "direct",
            Shape::Pipelined => "pipelined",
        }
    }
}

struct Row {
    shape: Shape,
    sessions: usize,
    ops_per_sec: f64,
}

fn preloaded(cli: &Cli) -> Db {
    let mut base: Vec<(i64, i64)> = {
        let mut rng = SplitMix64::new(cli.seed ^ 0xB00B_5EED);
        (0..cli.scale)
            .map(|i| ((rng.next_u64() >> 2) as i64, i as i64))
            .collect()
    };
    base.sort_unstable();
    Db::builder()
        .shards(SHARDS)
        .rma(RmaConfig::with_segment_size(cli.seg))
        .build_bulk(&base)
        .expect("static driver config is valid")
}

fn mix_for(cli: &Cli, client: usize) -> ReadWriteMix<impl FnMut() -> i64> {
    let mut rng = SplitMix64::new(cli.seed ^ (0x5E55_0000 + client as u64));
    ReadWriteMix::new(
        move || (rng.next_u64() >> 2) as i64,
        READ_FRACTION,
        cli.seed ^ (0xC01D_0000 + client as u64),
    )
}

fn run_one(cli: &Cli, shape: Shape, sessions: usize) -> f64 {
    let per_client = (cli.scale / sessions).max(1);
    median_of(cli.reps, || {
        let db = preloaded(cli);
        let (_, secs) = time(|| {
            std::thread::scope(|sc| {
                for client in 0..sessions {
                    let db = &db;
                    sc.spawn(move || {
                        let mut mix = mix_for(cli, client);
                        match shape {
                            Shape::Direct => {
                                let mut checksum = 0i64;
                                for _ in 0..per_client {
                                    match mix.next_op() {
                                        MixOp::Read(k) => {
                                            checksum =
                                                checksum.wrapping_add(db.get(k).unwrap_or(0));
                                        }
                                        MixOp::Write(k, v) => db.insert(k, v),
                                    }
                                }
                                std::hint::black_box(checksum);
                            }
                            Shape::Pipelined => {
                                let mut session = db.session();
                                let mut in_flight: VecDeque<Ticket> = VecDeque::new();
                                let mut batch = Vec::with_capacity(BATCH);
                                let mut submitted = 0usize;
                                while submitted < per_client {
                                    batch.clear();
                                    while batch.len() < BATCH
                                        && submitted + batch.len() < per_client
                                    {
                                        batch.push(match mix.next_op() {
                                            MixOp::Read(k) => Op::Get(k),
                                            MixOp::Write(k, v) => Op::Insert(k, v),
                                        });
                                    }
                                    submitted += batch.len();
                                    in_flight.push_back(session.submit(&batch));
                                    if in_flight.len() >= DEPTH {
                                        let replies =
                                            in_flight.pop_front().expect("non-empty").wait();
                                        std::hint::black_box(replies.len());
                                    }
                                }
                                for ticket in in_flight {
                                    std::hint::black_box(ticket.wait().len());
                                }
                            }
                        }
                    });
                }
            });
        });
        throughput(per_client * sessions, secs)
    })
}

fn write_json(
    path: &str,
    rows: &[Row],
    cli: &Cli,
    workers: usize,
    hw: usize,
) -> std::io::Result<()> {
    let rate = |shape: Shape, sessions: usize| {
        rows.iter()
            .find(|r| r.shape == shape && r.sessions == sessions)
            .map(|r| r.ops_per_sec)
            .unwrap_or(f64::NAN)
    };
    let max_sessions = *SESSION_COUNTS.last().expect("non-empty sweep");
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"router_throughput\",\n");
    json.push_str(&format!(
        "  \"scale\": {},\n  \"ops_per_sweep\": {},\n  \"batch\": {BATCH},\n  \"depth\": {DEPTH},\n",
        cli.scale, cli.scale
    ));
    json.push_str(&format!(
        "  \"read_fraction\": {READ_FRACTION},\n  \"shards\": {SHARDS},\n  \"router_workers\": {workers},\n"
    ));
    json.push_str(&format!(
        "  \"seed\": {},\n  \"segment_size\": {},\n  \"reps\": {},\n  \"hw_threads\": {hw},\n",
        cli.seed, cli.seg, cli.reps
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"sessions\": {}, \"ops_per_sec\": {:.1}}}{}\n",
            r.shape.label(),
            r.sessions,
            r.ops_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"ratio_pipelined_vs_direct_1s\": {:.4},\n",
        rate(Shape::Pipelined, 1) / rate(Shape::Direct, 1)
    ));
    json.push_str(&format!(
        "  \"ratio_pipelined_vs_direct_{max_sessions}s\": {:.4},\n",
        rate(Shape::Pipelined, max_sessions) / rate(Shape::Direct, max_sessions)
    ));
    json.push_str("  \"ratio_bar_1s\": 0.8\n}\n");
    std::fs::write(path, json)
}

fn main() {
    let cli = Cli::parse();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    // One throwaway build reports the resolved worker count.
    let workers = preloaded(&Cli {
        scale: 16,
        ..cli.clone()
    })
    .stats()
    .router
    .workers;
    println!(
        "# Fig. 19 — session router throughput: N={} preloaded, N mixed ops ({} reads), {SHARDS} shards, {workers} router workers, batch {BATCH}, depth {DEPTH}, B={}, hw_threads={hw}",
        cli.scale, READ_FRACTION, cli.seg
    );
    print!("{:<11}", "mode");
    for s in SESSION_COUNTS {
        print!(" {:>12}", format!("{s} session(s)"));
    }
    println!();

    let mut rows = Vec::new();
    for shape in [Shape::Direct, Shape::Pipelined] {
        print!("{:<11}", shape.label());
        for sessions in SESSION_COUNTS {
            let rate = run_one(&cli, shape, sessions);
            print!(" {:>12}", fmt_throughput(rate as usize, 1.0).trim());
            rows.push(Row {
                shape,
                sessions,
                ops_per_sec: rate,
            });
        }
        println!();
    }
    let rate = |shape: Shape, sessions: usize| {
        rows.iter()
            .find(|r| r.shape == shape && r.sessions == sessions)
            .map(|r| r.ops_per_sec)
            .unwrap_or(0.0)
    };
    println!(
        "# pipelined/direct throughput ratio at 1 session: {:.3} (bar: >= 0.8)",
        rate(Shape::Pipelined, 1) / rate(Shape::Direct, 1).max(1e-9)
    );

    let path = "BENCH_router_throughput.json";
    match write_json(path, &rows, &cli, workers, hw) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
