//! Figure 18 (beyond the paper) — **insert tail latency under
//! background splitter re-learning**: does restructuring stall the
//! write path?
//!
//! PR 3 made readers immune to maintenance, but a monolithic
//! `relearn_splitters()` still drained every shard under its write
//! lock — a writer landing mid-rebuild stalled for the whole rebuild
//! (~100 ms at 2^20 scale). The incremental maintenance engine
//! replaces that with bounded steps, each publishing its own
//! copy-on-write topology; a writer now waits out at most the one
//! step touching its shard. This driver measures exactly that: an
//! insert-only shifting-hotspot stream (whose jumping hot band forces
//! re-learning mid-measurement) runs against a preloaded
//! [`rma_shard::ShardedRma`] under three maintenance regimes over the same
//! operation stream —
//!
//! * `off` — maintenance never runs (the latency floor);
//! * `monolithic` — a background [`Maintainer`](rma_shard::Maintainer)
//!   with [`RelearnStrategy::Monolithic`]: re-learning holds every
//!   shard's write lock for the whole single-swap rebuild;
//! * `incremental` — the same maintainer with the default
//!   [`RelearnStrategy::Incremental`] plan engine (a few steps per
//!   tick, inter-step pauses).
//!
//! Each mode runs `--reps` times and the reported row is the rep
//! with the **median worst-insert** — the paper's median-of-
//! repetitions convention, which matters here because single-digit
//! millisecond kernel hiccups (page-fault/mmap-lock noise on a
//! 1-core host, visible in the maintenance-off floor's own `max`)
//! would otherwise dominate a one-in-a-million statistic.
//!
//! Writes `BENCH_write_stall.json`. The acceptance bars tracked by
//! the repository: with incremental background re-learning active,
//! insert p99 ≤ 5× the maintenance-off floor and the worst single
//! insert stall ≤ 10 ms at 2^20 scale — with the monolithic column
//! retained to show the delta. Schema in
//! `crates/bench-harness/README.md`.

use bench_harness::Cli;
use rma_core::RmaConfig;
use rma_db::Db;
use rma_shard::{MaintainerConfig, RelearnStrategy, ShardConfig};
use std::time::Duration;
use workloads::{
    drive_recorded, summarize, HotspotConfig, HotspotMotion, LatencySummary, ReadWriteMix,
    ShiftingHotspot, SplitMix64,
};

const SHARDS: usize = 32;
/// Hot-band phases across the measurement window (matches fig16/17).
const PHASES: u64 = 6;
/// The repository's stall acceptance bar, in nanoseconds.
const STALL_BAR_NS: u64 = 10_000_000;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Off,
    Monolithic,
    Incremental,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::Monolithic => "monolithic",
            Mode::Incremental => "incremental",
        }
    }
}

struct Row {
    mode: Mode,
    writes: LatencySummary,
    maintain_runs: u64,
    relearns: u64,
    steps_executed: u64,
    keys_migrated: u64,
    max_step_wall_ns: u64,
    topologies_published: u64,
    shards_after: usize,
}

fn preloaded(cli: &Cli, mode: Mode) -> Db {
    let cfg = ShardConfig {
        num_shards: SHARDS,
        // Per-shard reservations sized for a sharded deployment: the
        // global default (8 GiB per RMA) makes every fresh shard
        // build pay a multi-ms page-table setup, which would charge
        // maintenance fixed costs to the measured stall.
        rma: RmaConfig {
            reserve_bytes: 1 << 28,
            // No MADV_HUGEPAGE: this host compacts synchronously on
            // fault for hinted regions (`defrag=madvise`), and shard
            // maintenance churns fresh reservations — a first-touch
            // fault mid-compaction stalls an insert for tens of
            // milliseconds, swamping the signal this driver measures.
            huge_pages: false,
            ..RmaConfig::with_segment_size(cli.seg)
        },
        min_split_len: 256,
        relearn_strategy: match mode {
            Mode::Monolithic => RelearnStrategy::Monolithic,
            _ => RelearnStrategy::Incremental,
        },
        // Step budget for a 10 ms stall SLO on a single-core host: a
        // step's locked window costs ~its residents' bulk-load time,
        // and a saturated 1-CPU box roughly doubles the wall clock a
        // blocked writer observes, so one step must stay ~2 ms of
        // CPU. Smaller steps simply mean more of them — the plan
        // engine's point. The shard-length backstop keeps every
        // shard small enough that even the (uncapped) split that
        // shrinks a hot shard fits the budget.
        max_step_elems: 1 << 15,
        max_shard_len: Some(1 << 15),
        ..Default::default()
    };
    let mut base: Vec<(i64, i64)> = {
        let mut rng = SplitMix64::new(cli.seed ^ 0xB00B_5EED);
        (0..cli.scale)
            .map(|i| ((rng.next_u64() >> 2) as i64, i as i64))
            .collect()
    };
    base.sort_unstable();
    let mut builder = Db::builder().shard_config(cfg);
    if mode != Mode::Off {
        builder = builder.maintenance(MaintainerConfig {
            poll_interval: Duration::from_millis(2),
            imbalance_trigger: 1.5,
            // React and drain quickly: the shorter the window between
            // plans (and the faster a plan finishes), the less a
            // jumped hot band can pile into one shard before the
            // split that shrinks it runs — per-step work is capped,
            // so a faster cadence costs only more (bounded) steps.
            min_ops_between: 2048,
            steps_per_tick: 4,
            // Generous pauses between steps: a writer queued behind
            // the previous step always drains fully before the next
            // one can lock anything.
            step_pause: Duration::from_millis(2),
            ..Default::default()
        });
    }
    builder
        .build_bulk(&base)
        .expect("static driver config is valid")
}

fn run(cli: &Cli, mode: Mode) -> Row {
    let db = preloaded(cli, mode);
    let ops = cli.scale as u64;
    // Insert-only mix over the jumping hot band: every op is a write,
    // so the recorded distribution *is* the insert tail.
    let mut hs = ShiftingHotspot::new(
        HotspotConfig {
            phase_len: (ops / PHASES).max(1),
            motion: HotspotMotion::Jump,
            ..Default::default()
        },
        cli.seed,
    );
    let mut mix = ReadWriteMix::new(move || hs.next_key(), 0.0, cli.seed ^ 0xC01D_C0FE);

    let idx = db.engine();
    let log = drive_recorded(ops, &mut mix, |_| {}, |k, v| idx.insert(k, v), |_| 0);

    let (maintain_runs, relearns) = match db.stop_maintenance() {
        Some(stats) => (stats.runs, stats.relearns),
        None => (0, 0),
    };
    idx.check_invariants();
    let mstats = idx.maintenance_stats();
    Row {
        mode,
        writes: summarize(&log.writes),
        maintain_runs,
        relearns,
        steps_executed: mstats.steps_executed,
        keys_migrated: mstats.keys_migrated,
        max_step_wall_ns: mstats.max_step_wall_ns,
        topologies_published: mstats.topologies_published,
        shards_after: idx.num_shards(),
    }
}

fn write_json(path: &str, rows: &[Row], cli: &Cli, hw: usize) -> std::io::Result<()> {
    let of = |mode: Mode| rows.iter().find(|r| r.mode == mode).expect("mode row");
    let p99 = |mode: Mode| of(mode).writes.p99 as f64;
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"write_stall\",\n");
    json.push_str(&format!(
        "  \"scale\": {},\n  \"ops\": {},\n  \"shards\": {SHARDS},\n  \"phases\": {PHASES},\n",
        cli.scale, cli.scale
    ));
    json.push_str(&format!(
        "  \"seed\": {},\n  \"segment_size\": {},\n  \"hw_threads\": {hw},\n",
        cli.seed, cli.seg
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"write_p50_ns\": {}, \"write_p99_ns\": {}, \
             \"write_p999_ns\": {}, \"write_max_ns\": {}, \"write_mean_ns\": {:.1}, \
             \"writes\": {}, \"maintain_runs\": {}, \"relearns\": {}, \"steps_executed\": {}, \
             \"keys_migrated\": {}, \"max_step_wall_ns\": {}, \"topologies_published\": {}, \
             \"shards_after\": {}}}{}\n",
            r.mode.label(),
            r.writes.p50,
            r.writes.p99,
            r.writes.p999,
            r.writes.max,
            r.writes.mean,
            r.writes.samples,
            r.maintain_runs,
            r.relearns,
            r.steps_executed,
            r.keys_migrated,
            r.max_step_wall_ns,
            r.topologies_published,
            r.shards_after,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"p99_ratio_monolithic_vs_off\": {:.4},\n",
        p99(Mode::Monolithic) / p99(Mode::Off).max(1.0)
    ));
    json.push_str(&format!(
        "  \"p99_ratio_incremental_vs_off\": {:.4},\n",
        p99(Mode::Incremental) / p99(Mode::Off).max(1.0)
    ));
    json.push_str(&format!(
        "  \"max_stall_off_ns\": {},\n  \"max_stall_monolithic_ns\": {},\n  \"max_stall_incremental_ns\": {},\n",
        of(Mode::Off).writes.max,
        of(Mode::Monolithic).writes.max,
        of(Mode::Incremental).writes.max
    ));
    json.push_str(&format!("  \"stall_bar_ns\": {STALL_BAR_NS}\n}}\n"));
    std::fs::write(path, json)
}

fn main() {
    let cli = Cli::parse();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "# Fig. 18 — insert tail latency under background re-learning: N={} preloaded, {} inserts, {SHARDS} shards, B={}, hw_threads={hw}",
        cli.scale, cli.scale, cli.seg
    );
    println!(
        "{:<12} {:>9} {:>9} {:>10} {:>12} {:>6} {:>7} {:>12} {:>6}",
        "mode",
        "p50(ns)",
        "p99(ns)",
        "p999(ns)",
        "max(ns)",
        "maint",
        "steps",
        "maxstep(ns)",
        "shards"
    );
    let mut rows = Vec::new();
    for mode in [Mode::Off, Mode::Monolithic, Mode::Incremental] {
        // Median-of-reps by worst insert (see module docs).
        let mut reps: Vec<Row> = (0..cli.reps.max(1)).map(|_| run(&cli, mode)).collect();
        reps.sort_by_key(|r| r.writes.max);
        let row = reps.remove(reps.len() / 2);
        println!(
            "{:<12} {:>9} {:>9} {:>10} {:>12} {:>6} {:>7} {:>12} {:>6}",
            row.mode.label(),
            row.writes.p50,
            row.writes.p99,
            row.writes.p999,
            row.writes.max,
            row.maintain_runs,
            row.steps_executed,
            row.max_step_wall_ns,
            row.shards_after
        );
        rows.push(row);
    }
    let of = |mode: Mode| rows.iter().find(|r| r.mode == mode).expect("mode row");
    println!(
        "# insert p99 ratio vs off: monolithic {:.3}, incremental {:.3} (bar: <= 5.0)",
        of(Mode::Monolithic).writes.p99 as f64 / of(Mode::Off).writes.p99.max(1) as f64,
        of(Mode::Incremental).writes.p99 as f64 / of(Mode::Off).writes.p99.max(1) as f64,
    );
    println!(
        "# worst single insert: off {} ns, monolithic {} ns, incremental {} ns (bar: <= {} ns incremental)",
        of(Mode::Off).writes.max,
        of(Mode::Monolithic).writes.max,
        of(Mode::Incremental).writes.max,
        STALL_BAR_NS
    );

    let path = "BENCH_write_stall.json";
    match write_json(path, &rows, &cli, hw) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
