//! Figure 13a — (a,b)-tree aging.
//!
//! Bulk-loads a sorted batch of N elements into an (a,b)-tree (leaves
//! laid out contiguously in allocation order), then repeatedly applies
//! rounds of random insertions followed by the same number of
//! deletions. After each round it reports full-scan throughput against
//! the percentage of changed elements — the paper observes a ~25%
//! scan-throughput drop already after 5% churn, and this driver prints
//! the same curve.

use abtree::{AbTree, AbTreeConfig};
use bench_harness::{throughput, time, Cli};
use workloads::{sorted_unique_keys, KeyStream, Pattern};

fn main() {
    let cli = Cli::parse();
    let n = cli.scale;
    let round = (n / 100).max(1); // 1% of the structure per round
    let rounds = 50;

    println!(
        "# Fig. 13a — (a,b)-tree aging, N={n}, B={}, round={round}",
        cli.seg
    );
    println!("{:>12} {:>14} {:>10}", "% changed", "scan elts/s", "rel.");

    let keys = sorted_unique_keys(n, cli.seed);
    let pairs: Vec<(i64, i64)> = keys.iter().map(|&k| (k, 1)).collect();
    let mut tree = AbTree::bulk_load(AbTreeConfig::with_leaf_capacity(cli.seg), &pairs);

    let mut fresh_scan = None;
    let mut ins_stream = KeyStream::new(Pattern::Uniform, cli.seed ^ 0x1757u64);
    let mut del_stream = KeyStream::new(Pattern::Uniform, cli.seed ^ 0xDE1);
    for r in 0..=rounds {
        if r > 0 {
            for _ in 0..round {
                let (k, v) = ins_stream.next_pair();
                tree.insert(k, v);
            }
            for _ in 0..round {
                let k = del_stream.next_key();
                tree.remove_successor(k);
            }
        }
        let (visited, secs) = time(|| {
            let (n2, sum) = tree.sum_range(i64::MIN, n);
            std::hint::black_box(sum);
            n2
        });
        let tput = throughput(visited, secs);
        let base = *fresh_scan.get_or_insert(tput);
        println!(
            "{:>11.1}% {:>14.3e} {:>9.2}%",
            r as f64 * round as f64 * 100.0 / n as f64,
            tput,
            tput / base * 100.0
        );
    }
}
