//! A uniform façade over every data structure under test, so the
//! experiment drivers can sweep structures generically.

use abtree::{AbTree, AbTreeConfig, DenseArray};
use art::ArtTree;
use pma_baseline::{Tpma, TpmaConfig};
use rma_core::{Rma, RmaConfig};
use rma_db::Db;

/// Key/value scalar type of the reproduction.
pub type Key = i64;
/// Value scalar type.
pub type Value = i64;

/// Common operations the experiments exercise.
#[allow(clippy::len_without_is_empty)] // drivers never need is_empty
pub trait Store {
    /// Short label for report rows.
    fn label(&self) -> String;
    /// Inserts a pair (duplicates kept).
    fn insert(&mut self, k: Key, v: Value);
    /// Removes the first element `>= k` (or the maximum); returns
    /// false only when empty.
    fn remove_successor(&mut self, k: Key) -> bool;
    /// Point lookup.
    fn get(&self, k: Key) -> Option<Value>;
    /// Sums up to `count` values from the first key `>= start`.
    fn sum_range(&self, start: Key, count: usize) -> (usize, i64);
    /// Stored elements.
    fn len(&self) -> usize;
    /// Estimated resident bytes.
    fn footprint(&self) -> usize;
}

impl Store for Rma {
    fn label(&self) -> String {
        format!("RMA B={}", self.config().segment_size)
    }
    fn insert(&mut self, k: Key, v: Value) {
        Rma::insert(self, k, v)
    }
    fn remove_successor(&mut self, k: Key) -> bool {
        Rma::remove_successor(self, k).is_some()
    }
    fn get(&self, k: Key) -> Option<Value> {
        Rma::get(self, k)
    }
    fn sum_range(&self, start: Key, count: usize) -> (usize, i64) {
        Rma::sum_range(self, start, count)
    }
    fn len(&self) -> usize {
        Rma::len(self)
    }
    fn footprint(&self) -> usize {
        self.memory_footprint()
    }
}

impl Store for AbTree {
    fn label(&self) -> String {
        format!("(a,b)-tree B={}", self.config().leaf_capacity)
    }
    fn insert(&mut self, k: Key, v: Value) {
        AbTree::insert(self, k, v)
    }
    fn remove_successor(&mut self, k: Key) -> bool {
        AbTree::remove_successor(self, k).is_some()
    }
    fn get(&self, k: Key) -> Option<Value> {
        AbTree::get(self, k)
    }
    fn sum_range(&self, start: Key, count: usize) -> (usize, i64) {
        AbTree::sum_range(self, start, count)
    }
    fn len(&self) -> usize {
        AbTree::len(self)
    }
    fn footprint(&self) -> usize {
        self.memory_footprint()
    }
}

impl Store for ArtTree {
    fn label(&self) -> String {
        format!("ART B={}", self.leaf_capacity())
    }
    fn insert(&mut self, k: Key, v: Value) {
        ArtTree::insert(self, k, v)
    }
    fn remove_successor(&mut self, k: Key) -> bool {
        ArtTree::remove_successor(self, k).is_some()
    }
    fn get(&self, k: Key) -> Option<Value> {
        ArtTree::get(self, k)
    }
    fn sum_range(&self, start: Key, count: usize) -> (usize, i64) {
        ArtTree::sum_range(self, start, count)
    }
    fn len(&self) -> usize {
        ArtTree::len(self)
    }
    fn footprint(&self) -> usize {
        self.memory_footprint()
    }
}

impl Store for Tpma {
    fn label(&self) -> String {
        "TPMA".into()
    }
    fn insert(&mut self, k: Key, v: Value) {
        Tpma::insert(self, k, v)
    }
    fn remove_successor(&mut self, k: Key) -> bool {
        Tpma::remove_successor(self, k).is_some()
    }
    fn get(&self, k: Key) -> Option<Value> {
        Tpma::get(self, k)
    }
    fn sum_range(&self, start: Key, count: usize) -> (usize, i64) {
        Tpma::sum_range(self, start, count)
    }
    fn len(&self) -> usize {
        Tpma::len(self)
    }
    fn footprint(&self) -> usize {
        self.memory_footprint()
    }
}

impl Store for Db {
    fn label(&self) -> String {
        format!(
            "Sharded-RMA n={} B={}",
            self.engine().num_shards(),
            self.engine().config().rma.segment_size
        )
    }
    fn insert(&mut self, k: Key, v: Value) {
        Db::insert(self, k, v)
    }
    fn remove_successor(&mut self, k: Key) -> bool {
        Db::remove_successor(self, k).is_some()
    }
    fn get(&self, k: Key) -> Option<Value> {
        Db::get(self, k)
    }
    fn sum_range(&self, start: Key, count: usize) -> (usize, i64) {
        Db::sum_range(self, start, count)
    }
    fn len(&self) -> usize {
        Db::len(self)
    }
    fn footprint(&self) -> usize {
        self.engine().memory_footprint()
    }
}

/// Factory closures for the structures a driver sweeps.
pub type StoreFactory = Box<dyn Fn() -> Box<dyn Store>>;

/// RMA factory at segment size `b` with optional features.
pub fn rma_factory(b: usize, rewired: bool, adaptive: bool) -> StoreFactory {
    Box::new(move || {
        Box::new(Rma::new(
            RmaConfig::with_segment_size(b)
                .rewired(rewired)
                .adaptive(adaptive),
        ))
    })
}

/// Sharded-RMA factory: a [`Db`] of `shards` shards of
/// segment-size-`b` RMAs with splitters spread over the uniform key
/// domain, built through the facade's validating builder.
pub fn sharded_rma_factory(b: usize, shards: usize) -> StoreFactory {
    Box::new(move || {
        Box::new(
            Db::builder()
                .shards(shards)
                .rma(RmaConfig::with_segment_size(b))
                .build()
                .expect("static factory config is valid"),
        )
    })
}

/// (a,b)-tree factory at leaf capacity `b`.
pub fn abtree_factory(b: usize) -> StoreFactory {
    Box::new(move || Box::new(AbTree::new(AbTreeConfig::with_leaf_capacity(b))))
}

/// ART-indexed tree factory at leaf capacity `b`.
pub fn art_factory(b: usize) -> StoreFactory {
    Box::new(move || Box::new(ArtTree::new(b)))
}

/// TPMA factory from a config.
pub fn tpma_factory(cfg: TpmaConfig) -> StoreFactory {
    Box::new(move || Box::new(Tpma::new(cfg)))
}

/// Builds the dense-array scan roofline from a store's content via a
/// full scan (keys reconstructed as ranks is enough for scan cost).
pub fn dense_from_pairs(pairs: &[(Key, Value)]) -> DenseArray {
    let mut sorted = pairs.to_vec();
    sorted.sort_unstable_by_key(|p| p.0);
    DenseArray::from_sorted(&sorted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_factory_round_trips() {
        let factories: Vec<StoreFactory> = vec![
            rma_factory(32, false, false),
            rma_factory(32, true, true),
            sharded_rma_factory(32, 4),
            abtree_factory(32),
            art_factory(32),
            tpma_factory(TpmaConfig::traditional()),
            tpma_factory(TpmaConfig::clustered()),
        ];
        for f in factories {
            let mut s = f();
            for k in 0..2000i64 {
                s.insert((k * 37) % 1000, k);
            }
            assert_eq!(s.len(), 2000, "{}", s.label());
            assert!(s.get(37).is_some());
            let (n, _) = s.sum_range(0, 100);
            assert_eq!(n, 100);
            assert!(s.remove_successor(0));
            assert_eq!(s.len(), 1999);
            assert!(s.footprint() > 0);
        }
    }

    #[test]
    fn dense_from_pairs_sorts() {
        let d = dense_from_pairs(&[(3, 1), (1, 2), (2, 3)]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.get(1), Some(2));
    }
}
